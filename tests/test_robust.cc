// Tests for the overload-robustness layer (PR 8):
//   * deadlines — a query that expires while queued resolves timed_out
//     without executing; one that expires mid-traversal is stopped
//     cooperatively and its partial work discarded;
//   * cancellation propagation — par_do stamps the current token into
//     forked jobs and thieves adopt it, so a stolen subtask of a
//     cancelled computation observes the latch (flight-recorder-verified
//     against a real steal, like test_obs's trace-id test);
//   * the brownout ladder — depth-driven degrade/shed transitions under
//     failpoint-forced slowness, point reads admitted throughout;
//   * the query_status contract — every status reachable, every future
//     resolved, including across stop();
//   * the failpoint harness itself — spec grammar, deterministic
//     seed-driven trigger patterns, obs-registry export.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/bucketing.h"
#include "graph/edge_map.h"
#include "graph/generators.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "parlib/atomics.h"
#include "parlib/cancellation.h"
#include "parlib/scheduler.h"
#include "parlib/trace_hooks.h"
#include "robust/failpoint.h"
#include "serve/query.h"
#include "serve/query_engine.h"
#include "serve/snapshot_manager.h"
#include "serve/snapshot_store.h"

namespace {

using gbbs::edge;
using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::vertex_subset;
using gbbs::obs::event_type;
using gbbs::robust::failpoint_mode;
using gbbs::serve::query;
using gbbs::serve::query_engine;
using gbbs::serve::query_kind;
using gbbs::serve::query_priority;
using gbbs::serve::query_result;
using gbbs::serve::query_status;
using gbbs::serve::snapshot_manager;
using gbbs::serve::snapshot_store;

using uw_edge = edge<empty_weight>;
using uw_update = gbbs::dynamic::update<empty_weight>;

// The CI runner may expose a single core; the steal-propagation tests
// need real thieves. Must run before the scheduler is first touched.
struct force_workers {
  force_workers() { parlib::scheduler::set_num_workers(4); }
};
const force_workers kForceWorkers;

gbbs::robust::registry& fp() { return gbbs::robust::registry::instance(); }

std::vector<uw_update> inserts(const std::vector<uw_edge>& edges) {
  std::vector<uw_update> ups;
  ups.reserve(edges.size());
  for (const auto& e : edges) {
    ups.push_back({e.u, e.v, {}, gbbs::dynamic::update_op::insert});
  }
  return ups;
}

std::vector<uw_edge> path_edges_vec(vertex_id n) {
  std::vector<uw_edge> path;
  path.reserve(n - 1);
  for (vertex_id v = 0; v + 1 < n; ++v) path.push_back({v, v + 1, {}});
  return path;
}

std::uint64_t fp_triggers(const std::string& name) {
  for (const auto& [n, c] : fp().trigger_counts()) {
    if (n == name) return c;
  }
  return 0;
}

// ---- failpoint harness ----------------------------------------------------

TEST(Failpoint, SpecGrammarAndModes) {
  fp().reset();
  // always: fires on every hit.
  ASSERT_TRUE(fp().configure_from_entry("test.a=always"));
  auto& a = fp().get("test.a");
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(a.hit(fp().seed()));
  EXPECT_EQ(a.triggers(), 5u);

  // n:3 fires on every 3rd hit.
  ASSERT_TRUE(fp().configure_from_entry("test.b=n:3"));
  auto& b = fp().get("test.b");
  int fired = 0;
  for (int i = 0; i < 9; ++i) fired += b.hit(fp().seed()) ? 1 : 0;
  EXPECT_EQ(fired, 3);

  // always with a delay payload.
  ASSERT_TRUE(fp().configure_from_entry("test.c=always:250"));
  EXPECT_EQ(fp().get("test.c").arg_us(), 250u);

  // off never fires even when hit.
  ASSERT_TRUE(fp().configure_from_entry("test.a=off"));
  EXPECT_FALSE(a.hit(fp().seed()));

  // Malformed specs are rejected and leave the point untouched.
  EXPECT_FALSE(fp().configure_from_entry("test.a"));
  EXPECT_FALSE(fp().configure_from_entry("=always"));
  EXPECT_FALSE(fp().configure_from_entry("test.a=maybe"));
  EXPECT_FALSE(fp().configure_from_entry("test.a=p"));
  EXPECT_FALSE(fp().configure_from_entry("test.a=p:0.5:1:2"));
  EXPECT_FALSE(a.hit(fp().seed())) << "malformed spec re-armed the point";
  fp().reset();
}

TEST(Failpoint, ProbabilisticPatternIsSeedDeterministic) {
  fp().reset();
  fp().set_seed(42);
  fp().configure("test.det", failpoint_mode::probability, 0.3);
  auto& p = fp().get("test.det");
  constexpr int kHits = 2000;
  std::vector<bool> first;
  first.reserve(kHits);
  for (int i = 0; i < kHits; ++i) first.push_back(p.hit(fp().seed()));
  const std::uint64_t fired = p.triggers();
  // ~30% of 2000, very loose bounds (the decision hash is uniform).
  EXPECT_GT(fired, 400u);
  EXPECT_LT(fired, 800u);

  // Same seed, same hit sequence: bit-identical trigger pattern.
  p.reset_counts();
  for (int i = 0; i < kHits; ++i) {
    EXPECT_EQ(p.hit(fp().seed()), first[i]) << "hit " << i;
  }
  EXPECT_EQ(p.triggers(), fired);
  fp().reset();
}

TEST(Failpoint, PublishDelayFiresAndExportsThroughObsRegistry) {
  fp().reset();
  fp().configure("ingest.publish.delay", failpoint_mode::always,
                 /*probability=*/1.0, /*nth=*/0, /*arg_us=*/200);
  snapshot_manager<empty_weight> mgr(8);
  mgr.ingest(inserts({{0, 1, {}}, {1, 2, {}}}));
  mgr.publish();
  EXPECT_GE(fp_triggers("ingest.publish.delay"), 1u);
  // Satellite (c): trigger counts surface in the obs registry export.
  auto& reg = gbbs::obs::registry::global();
  const std::string json = reg.to_json(reg.read());
  EXPECT_NE(json.find("robust.failpoint.ingest.publish.delay"),
            std::string::npos);
  fp().reset();
}

// ---- cancellation primitives ----------------------------------------------

TEST(Cancellation, DeadlinePollLatchesForFlagOnlyCheckers) {
  parlib::cancel::token tok;
  EXPECT_FALSE(tok.cancelled());
  EXPECT_FALSE(tok.timed_out());
  tok.set_deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  // The deadline has passed but nothing polled yet: flag-only checks
  // still read clear (that is the contract — poll() does the clock).
  EXPECT_FALSE(tok.cancelled());
  EXPECT_TRUE(tok.poll());
  // Latched: every subsequent flag-only check, on any thread, fires.
  EXPECT_TRUE(tok.cancelled());
  EXPECT_TRUE(tok.timed_out());

  // Explicit cancel without a deadline never claims timed_out.
  parlib::cancel::token tok2;
  tok2.request_cancel();
  EXPECT_TRUE(tok2.poll());
  EXPECT_FALSE(tok2.timed_out());

  // Free helpers: null token means "not cancellable".
  parlib::cancel::set_current_token(nullptr);
  EXPECT_FALSE(parlib::cancel::cancelled());
  EXPECT_FALSE(parlib::cancel::poll());
  {
    parlib::cancel::token_scope scope(&tok);
    EXPECT_TRUE(parlib::cancel::cancelled());
  }
  EXPECT_FALSE(parlib::cancel::cancelled()) << "token_scope did not restore";
}

// A BFS-style acquire functor (as in test_edge_map.cc).
struct acquire_f {
  std::vector<std::uint8_t>* visited;
  bool update(vertex_id, vertex_id v, empty_weight) const {
    if (!(*visited)[v]) {
      (*visited)[v] = 1;
      return true;
    }
    return false;
  }
  bool update_atomic(vertex_id, vertex_id v, empty_weight) const {
    return parlib::test_and_set(&(*visited)[v]);
  }
  bool cond(vertex_id v) const { return !(*visited)[v]; }
};

TEST(Cancellation, EdgeMapUnwindsUnderCancelledToken) {
  auto g = gbbs::rmat_symmetric(10, 8000, 11);
  const vertex_id src = 3;
  ASSERT_GT(g.out_degree(src), 0u);

  parlib::cancel::token tok;
  tok.request_cancel();
  for (int mode = 0; mode < 3; ++mode) {
    gbbs::edge_map_options o;
    if (mode == 0) {
      o.allow_dense = false;
      o.use_blocked = true;
    } else if (mode == 1) {
      o.allow_dense = false;
      o.use_blocked = false;
    } else {
      o.threshold = 0;  // always dense
    }
    std::vector<std::uint8_t> visited(g.num_vertices(), 0);
    visited[src] = 1;
    vertex_subset frontier(g.num_vertices(), src);
    parlib::cancel::token_scope scope(&tok);
    auto next = gbbs::edge_map(g, frontier, acquire_f{&visited}, o);
    EXPECT_TRUE(next.empty()) << "mode " << mode
                              << " traversed under a cancelled token";
  }

  // Control: the same call with no token bound produces the neighborhood.
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  visited[src] = 1;
  vertex_subset frontier(g.num_vertices(), src);
  auto next = gbbs::edge_map(g, frontier, acquire_f{&visited});
  EXPECT_EQ(next.size(), g.out_degree(src));
}

TEST(Cancellation, BucketingStopsUnderCancelledToken) {
  const vertex_id n = 100;
  std::vector<gbbs::bucket_id> d(n);
  for (vertex_id v = 0; v < n; ++v) d[v] = v % 10;
  auto b = gbbs::make_buckets(
      n, [&](vertex_id v) { return d[v]; }, gbbs::bucket_order::increasing);

  parlib::cancel::token tok;
  tok.request_cancel();
  {
    parlib::cancel::token_scope scope(&tok);
    auto [bkt, ids] = b.next_bucket();
    EXPECT_EQ(bkt, gbbs::kNullBucket)
        << "bucket executor kept running under a cancelled token";
  }
  // Unbound again, the structure still works.
  auto [bkt, ids] = b.next_bucket();
  EXPECT_NE(bkt, gbbs::kNullBucket);
}

// The acceptance bullet: a stolen subtask of a cancelled computation
// observes the cancellation. Mirrors test_obs's trace-id steal test — an
// external registered thread forks under a bound token; when a native
// worker steals the right branch, the thief adopts job::cancel, so the
// latch set by the left branch is visible through the thread-local
// binding *on the thief*. The flight recorder proves a real steal
// happened (only thieves emit sched_run_begin on the forker's trace id).
TEST(Cancellation, PropagatesToStolenSubtasks) {
  auto& fr = gbbs::obs::flight_recorder::global();
  ASSERT_GE(parlib::scheduler::instance().num_workers(), 2u);
  bool steal_observed = false;
  for (int attempt = 0; attempt < 300 && !steal_observed; ++attempt) {
    const std::uint64_t tid = fr.next_trace_id();
    std::atomic<bool> right_saw_cancel{false};
    std::thread th([&] {
      parlib::worker_guard guard;
      ASSERT_TRUE(guard.registered());
      parlib::trace::trace_id_scope tscope(tid);
      parlib::cancel::token tok;
      parlib::cancel::token_scope cscope(&tok);
      std::atomic<bool> right_started{false};
      parlib::par_do(
          [&] {
            // Give a thief time to grab the right branch; bounded so an
            // un-stolen attempt (right runs after us) cannot deadlock.
            for (std::size_t spin = 0;
                 spin < (std::size_t{1} << 22) &&
                 !right_started.load(std::memory_order_acquire);
                 ++spin) {
            }
            tok.request_cancel();
          },
          [&] {
            right_started.store(true, std::memory_order_release);
            // Whether stolen (token adopted from the job) or local (scope
            // still bound), the latch must become visible through the
            // thread-local current token.
            std::size_t spin = 0;
            while (!parlib::cancel::cancelled() &&
                   spin < (std::size_t{1} << 26)) {
              ++spin;
            }
            right_saw_cancel.store(parlib::cancel::cancelled(),
                                   std::memory_order_release);
          });
    });
    th.join();
    ASSERT_TRUE(right_saw_cancel.load())
        << "cancellation latch never reached the right branch";
    for (const auto& ev : fr.snapshot_trace(tid)) {
      if (ev.type == event_type::sched_run_begin) steal_observed = true;
    }
  }
  EXPECT_TRUE(steal_observed)
      << "no steal in 300 attempts on a 4-worker scheduler";
}

// ---- engine deadlines -----------------------------------------------------

TEST(QueryEngine, DeadlineExpiredInQueueResolvesWithoutExecuting) {
  fp().reset();
  snapshot_manager<empty_weight> mgr(8);
  mgr.ingest(inserts({{0, 1, {}}, {1, 2, {}}}));
  mgr.publish();
  // Every executed query stalls 30ms at the top of its execution, so the
  // second query's 1ms deadline is long gone when the single reader
  // finally dequeues it.
  fp().configure("serve.exec.delay", failpoint_mode::always,
                 /*probability=*/1.0, /*nth=*/0, /*arg_us=*/30000);
  query_engine<empty_weight> engine(mgr.store(), /*num_readers=*/1);

  auto fa = engine.submit({query_kind::degree, 1, 0});
  query qb{query_kind::connected, 0, 2};
  qb.deadline_s = 0.001;
  auto fb = engine.submit(qb);

  EXPECT_EQ(fa.get().status, query_status::ok);
  auto rb = fb.get();
  EXPECT_EQ(rb.status, query_status::timed_out);
  EXPECT_EQ(rb.value, 0u);  // never computed
  EXPECT_GE(rb.latency_s, 0.001);
  EXPECT_EQ(engine.timed_out(), 1u);
  // The expired query short-circuited before the execution failpoint:
  // only the first query reached it.
  EXPECT_EQ(fp_triggers("serve.exec.delay"), 1u);
  // ...and contributed no latency sample to its kind's histograms.
  const auto stats = engine.latency_by_kind();
  EXPECT_EQ(
      stats[static_cast<std::size_t>(query_kind::connected)].count, 0u);
  fp().reset();
}

TEST(QueryEngine, MidFlightDeadlineStopsBfsAndDiscardsPartialWork) {
  fp().reset();
  // A long path: the frontier is one vertex per round, so the BFS takes
  // n-1 edge_map rounds — far longer than the deadline — and every round
  // polls the token at entry.
  const vertex_id n = 1u << 17;
  snapshot_manager<empty_weight> mgr(n);
  mgr.ingest(inserts(path_edges_vec(n)));
  mgr.publish();
  query_engine<empty_weight> engine(mgr.store(), /*num_readers=*/1);

  query q{query_kind::bfs_distance, 0, n - 1};
  q.deadline_s = 0.01;
  auto r = engine.submit(q).get();
  EXPECT_EQ(r.status, query_status::timed_out);
  EXPECT_EQ(r.value, 0u) << "partial traversal output leaked to the client";
  EXPECT_EQ(r.version, 0u);
  EXPECT_EQ(engine.timed_out(), 1u);
  // No ok-sample pollution from the cancelled run.
  const auto stats = engine.latency_by_kind();
  EXPECT_EQ(
      stats[static_cast<std::size_t>(query_kind::bfs_distance)].count, 0u);
  // The mid-flight expiry is tagged on the request timeline.
  auto& fr = gbbs::obs::flight_recorder::global();
  const std::uint32_t mark = fr.intern("serve.query.timed_out");
  bool tagged = false;
  for (const auto& ev : fr.snapshot()) {
    if (ev.type == event_type::instant && ev.arg_a == mark) tagged = true;
  }
  EXPECT_TRUE(tagged);
}

TEST(QueryEngine, CallerTokenCancelResolvesCancelled) {
  fp().reset();
  const vertex_id n = 1u << 14;
  snapshot_manager<empty_weight> mgr(n);
  mgr.ingest(inserts(path_edges_vec(n)));
  mgr.publish();
  query_engine<empty_weight> engine(mgr.store(), /*num_readers=*/1);

  // Cancelled before the reader ever picks it up: the traversal unwinds
  // at its first poll and the engine reports cancelled (not timed_out —
  // no deadline was armed).
  parlib::cancel::token tok;
  tok.request_cancel();
  query q{query_kind::bfs_distance, 0, n - 1};
  q.cancel = &tok;
  auto r = engine.submit(q).get();
  EXPECT_EQ(r.status, query_status::cancelled);
  EXPECT_EQ(r.value, 0u);
  EXPECT_EQ(engine.cancelled_queries(), 1u);
  EXPECT_EQ(engine.timed_out(), 0u);
}

// ---- unavailable (satellite a) --------------------------------------------

TEST(QueryEngine, EmptyStoreResolvesUnavailableNotSilentlyEmpty) {
  fp().reset();
  snapshot_store<empty_weight> store;  // nothing ever published
  query_engine<empty_weight> engine(store, /*num_readers=*/1);
  auto r = engine.submit({query_kind::degree, 0, 0}).get();
  EXPECT_EQ(r.status, query_status::unavailable);
  EXPECT_EQ(engine.unavailable(), 1u);
}

TEST(QueryEngine, PinFailureFailpointForcesUnavailable) {
  fp().reset();
  snapshot_manager<empty_weight> mgr(8);
  mgr.ingest(inserts({{0, 1, {}}}));
  mgr.publish();
  query_engine<empty_weight> engine(mgr.store(), /*num_readers=*/1);

  fp().configure("store.pin.fail", failpoint_mode::always);
  EXPECT_EQ(engine.submit({query_kind::degree, 0, 0}).get().status,
            query_status::unavailable);
  EXPECT_GE(fp_triggers("store.pin.fail"), 1u);

  // Disarmed, the same query serves normally again.
  fp().reset();
  auto r = engine.submit({query_kind::degree, 0, 0}).get();
  EXPECT_EQ(r.status, query_status::ok);
  EXPECT_EQ(r.value, 1u);
}

// ---- brownout ladder ------------------------------------------------------

TEST(QueryEngine, BrownoutLadderDegradesAndShedsKeepingPointReadsLive) {
  fp().reset();
  const vertex_id n = 1u << 12;
  snapshot_manager<empty_weight> mgr(n);
  mgr.ingest(inserts(path_edges_vec(n)));
  mgr.publish();

  // One slow reader (2ms injected per executed query) against a burst of
  // low-priority analytics: the queue walks the rungs (4 / 8 / 12 of 16)
  // almost immediately, so the burst's tail is shed at admission while
  // the queued head executes degraded (published merged CSR).
  fp().configure("serve.exec.delay", failpoint_mode::always,
                 /*probability=*/1.0, /*nth=*/0, /*arg_us=*/2000);
  gbbs::serve::query_engine_options opts;
  opts.max_queue = 16;
  opts.brownout = true;
  query_engine<empty_weight> engine(mgr.store(), &mgr.overlay(),
                                    /*num_readers=*/1, opts);

  std::vector<std::future<query_result>> analytics;
  for (int i = 0; i < 200; ++i) {
    query q{query_kind::bfs_distance, 0, n - 1};
    q.priority = query_priority::low;
    analytics.push_back(engine.submit(q));
  }
  // Point reads submitted while the ladder is maxed: admitted until the
  // queue is hard-full, never brownout-shed.
  std::vector<std::future<query_result>> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back(engine.submit({query_kind::degree, 1, 0}));
  }

  EXPECT_GE(engine.degrade_level(), 2) << "burst never walked the ladder";
  std::size_t point_ok = 0;
  for (auto& f : points) {
    const auto r = f.get();
    EXPECT_TRUE(r.status == query_status::ok ||
                r.status == query_status::rejected)
        << query_status_name(r.status);
    if (r.status == query_status::ok) {
      ++point_ok;
      EXPECT_EQ(r.value, 2u);
      EXPECT_FALSE(r.degraded) << "point reads must stay fresh";
    }
  }
  EXPECT_GT(point_ok, 0u) << "every point read starved under brownout";

  std::size_t an_ok = 0, an_degraded = 0, an_rejected = 0;
  for (auto& f : analytics) {
    const auto r = f.get();
    if (r.status == query_status::rejected) ++an_rejected;
    if (r.status != query_status::ok) continue;
    ++an_ok;
    if (r.degraded) {
      ++an_degraded;
      EXPECT_EQ(r.value, n - 1) << "degraded answer is wrong, not just stale";
      EXPECT_EQ(r.staleness, 0u)
          << "published version covers the whole overlay here";
    }
  }
  EXPECT_GT(an_rejected, 0u);
  EXPECT_GT(an_ok, 0u);
  EXPECT_GT(an_degraded, 0u) << "no queued analytics executed degraded";
  EXPECT_GT(engine.shed(), 0u);
  EXPECT_EQ(engine.shed() + engine.dropped(),
            static_cast<std::uint64_t>(an_rejected) +
                (points.size() - point_ok));
  // Escalation 0 -> >=2 is at least two counted transitions.
  EXPECT_GE(engine.degrade_transitions(), 2u);
  EXPECT_GT(engine.degraded_served(), 0u);

  // Transitions are tagged in the flight recorder with the new rung.
  auto& fr = gbbs::obs::flight_recorder::global();
  const std::uint32_t mark = fr.intern("serve.brownout.level");
  bool tagged = false;
  for (const auto& ev : fr.snapshot()) {
    if (ev.type == event_type::instant && ev.arg_a == mark) tagged = true;
  }
  EXPECT_TRUE(tagged);
  fp().reset();
}

TEST(QueryEngine, SubmitSaturateFailpointRejectsEvenWhenQueueHasRoom) {
  fp().reset();
  snapshot_manager<empty_weight> mgr(4);
  mgr.ingest(inserts({{0, 1, {}}}));
  mgr.publish();
  query_engine<empty_weight> engine(mgr.store(), /*num_readers=*/1);

  fp().configure("serve.submit.saturate", failpoint_mode::always);
  auto r = engine.submit({query_kind::degree, 0, 0}).get();
  EXPECT_EQ(r.status, query_status::rejected);
  EXPECT_EQ(engine.dropped(), 1u);
  fp().reset();
  EXPECT_EQ(engine.submit({query_kind::degree, 0, 0}).get().status,
            query_status::ok);
}

// ---- the status contract --------------------------------------------------

TEST(QueryEngine, EveryStatusIsReachable) {
  fp().reset();
  const vertex_id n = 1u << 14;
  snapshot_manager<empty_weight> mgr(n);
  mgr.ingest(inserts(path_edges_vec(n)));
  mgr.publish();
  query_engine<empty_weight> engine(mgr.store(), /*num_readers=*/1);

  std::set<query_status> seen;

  // ok
  seen.insert(engine.submit({query_kind::degree, 1, 0}).get().status);
  // rejected (forced saturation)
  fp().configure("serve.submit.saturate", failpoint_mode::always);
  seen.insert(engine.submit({query_kind::degree, 1, 0}).get().status);
  fp().reset();
  // timed_out (sub-microsecond deadline expires before dequeue)
  query qt{query_kind::bfs_distance, 0, n - 1};
  qt.deadline_s = 1e-9;
  seen.insert(engine.submit(qt).get().status);
  // cancelled (caller token, latched before execution)
  parlib::cancel::token tok;
  tok.request_cancel();
  query qc{query_kind::bfs_distance, 0, n - 1};
  qc.cancel = &tok;
  seen.insert(engine.submit(qc).get().status);
  // unavailable (pin failure)
  fp().configure("store.pin.fail", failpoint_mode::always);
  seen.insert(engine.submit({query_kind::degree, 1, 0}).get().status);
  fp().reset();

  EXPECT_EQ(seen.size(), gbbs::serve::kNumQueryStatuses);
  EXPECT_TRUE(seen.count(query_status::ok));
  EXPECT_TRUE(seen.count(query_status::rejected));
  EXPECT_TRUE(seen.count(query_status::timed_out));
  EXPECT_TRUE(seen.count(query_status::cancelled));
  EXPECT_TRUE(seen.count(query_status::unavailable));
}

TEST(QueryEngine, StopLeavesNoFutureUnready) {
  fp().reset();
  const vertex_id n = 1u << 12;
  snapshot_manager<empty_weight> mgr(n);
  mgr.ingest(inserts(path_edges_vec(n)));
  mgr.publish();
  fp().configure("serve.exec.delay", failpoint_mode::always,
                 /*probability=*/1.0, /*nth=*/0, /*arg_us=*/1000);
  std::vector<std::future<query_result>> futs;
  parlib::cancel::token tok;
  {
    query_engine<empty_weight> engine(mgr.store(), /*num_readers=*/1);
    for (int i = 0; i < 64; ++i) {
      query q;
      switch (i % 4) {
        case 0:
          q = {query_kind::degree, 1, 0};
          break;
        case 1:
          q = {query_kind::bfs_distance, 0, n - 1};
          q.deadline_s = 0.0005;
          break;
        case 2:
          q = {query_kind::connected, 0, 2};
          break;
        default:
          q = {query_kind::bfs_distance, 0, n - 1};
          q.cancel = &tok;
          break;
      }
      futs.push_back(engine.submit(q));
    }
    tok.request_cancel();
    engine.stop();
    // A submit racing-with/after stop resolves immediately, rejected.
    auto late = engine.submit({query_kind::degree, 0, 0});
    ASSERT_EQ(late.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(late.get().status, query_status::rejected);
  }
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "stop() left a future unresolved";
    const auto r = f.get();
    EXPECT_LE(static_cast<std::size_t>(r.status),
              gbbs::serve::kNumQueryStatuses - 1);
  }
  fp().reset();
}

}  // namespace
