// BFS vs the sequential oracle over the full graph suite, plus the
// multi-source BFS forest used by biconnectivity.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/bfs.h"
#include "graph/compression/compressed_graph.h"
#include "seq/reference.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

class BfsSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, BfsSuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(BfsSuite, DistancesMatchOracle) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  if (g.num_vertices() == 0) return;
  for (vertex_id src : {vertex_id{0}, g.num_vertices() / 2}) {
    auto got = gbbs::bfs(g, src);
    auto expected = gbbs::seq::bfs(g, src);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t v = 0; v < got.size(); ++v) {
      ASSERT_EQ(got[v], expected[v]) << GetParam() << " src=" << src
                                     << " v=" << v;
    }
  }
}

TEST_P(BfsSuite, SparseOnlyAndDenseOnlyAgree) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  if (g.num_vertices() == 0) return;
  gbbs::edge_map_options sparse_only{.threshold = -1, .allow_dense = false};
  gbbs::edge_map_options dense_only{.threshold = 0};
  auto a = gbbs::bfs(g, 0, sparse_only);
  auto b = gbbs::bfs(g, 0, dense_only);
  EXPECT_EQ(a, b);
}

TEST(Bfs, DirectedRespectsEdgeDirection) {
  // 0 -> 1 -> 2, and 3 -> 0: from 0, vertex 3 is unreachable.
  std::vector<gbbs::edge<gbbs::empty_weight>> edges = {
      {0, 1, {}}, {1, 2, {}}, {3, 0, {}}};
  auto g = gbbs::build_asymmetric_graph<gbbs::empty_weight>(4, edges);
  auto dist = gbbs::bfs(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], gbbs::kInfDist);
}

TEST(Bfs, WorksOnCompressedGraph) {
  auto g = gbbs::testing::make_symmetric("rmat");
  auto cg = gbbs::compressed_graph<gbbs::empty_weight>::compress(g);
  auto a = gbbs::bfs(g, 1);
  auto b = gbbs::bfs(cg, 1);
  EXPECT_EQ(a, b);
}

TEST(Bfs, PathDistancesAreExact) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      100, gbbs::path_edges(100));
  auto dist = gbbs::bfs(g, 0);
  for (vertex_id v = 0; v < 100; ++v) ASSERT_EQ(dist[v], v);
}

class BfsForestSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, BfsForestSuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(BfsForestSuite, ForestIsValid) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  if (g.num_vertices() == 0) return;
  // Roots: one per component from the oracle.
  auto cc = gbbs::seq::connectivity(g);
  std::vector<vertex_id> roots;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    if (cc[v] == v) roots.push_back(v);
  }
  auto parents = gbbs::bfs_forest(g, roots);
  // Every vertex reached; parent edges exist in g; following parents
  // reaches a root without cycling.
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NE(parents[v], gbbs::kNoVertex) << v;
    if (parents[v] != v) {
      auto nghs = g.out_neighbors(v);
      ASSERT_TRUE(std::binary_search(nghs.begin(), nghs.end(), parents[v]));
      ASSERT_EQ(cc[parents[v]], cc[v]);  // same component
    }
    vertex_id cur = v;
    std::size_t steps = 0;
    while (parents[cur] != cur) {
      cur = parents[cur];
      ASSERT_LE(++steps, g.num_vertices());
    }
    ASSERT_EQ(cc[cur], cc[v]);
  }
}

TEST(BfsForest, ParentsAreStrictlyCloserToRoot) {
  auto g = gbbs::testing::make_symmetric("rmat");
  auto dist = gbbs::seq::bfs(g, 3);
  auto parents = gbbs::bfs_forest(g, {3});
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] == gbbs::seq::kInfDist) {
      EXPECT_EQ(parents[v], gbbs::kNoVertex);
    } else if (v != 3) {
      ASSERT_EQ(dist[parents[v]] + 1, dist[v]) << v;
    }
  }
}

}  // namespace
