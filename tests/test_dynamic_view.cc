// Tests for the traversal-generic graph views:
//   * the randomized equivalence suite: BFS / k-core / triangles /
//     connectivity computed on the overlay-fused serve::dynamic_view (and
//     on the live dynamic_graph itself) must match the same algorithms on
//     a compacted snapshot(), across mixed insert/erase batch schedules
//     and across all edge_map modes (dense / blocked / plain sparse);
//   * the acceptance check: query-engine analytics on a version with a
//     non-empty overlay never materialize the merged CSR (asserted via
//     parlib::event_counters::merged_csr_materializations), while
//     explicitly-stale queries do — exactly once per version;
//   * the in-edge overlay: a directed live dynamic_graph's in-side
//     (degrees, neighborhoods, and the dense edgeMap that scans them)
//     matches the transposed snapshot after inserts and erases;
//   * the persistent overlay index: an ingest touching few vertices
//     shares every untouched bucket (shared_ptr-identical) with the
//     previous snapshot — the O(batch) refresh contract;
//   * the live edge count: num_edges() of a dynamic view includes overlay
//     inserts and excludes erases (what edge_map's direction threshold
//     consumes).
#include <algorithm>
#include <cstdint>
#include <future>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/bfs.h"
#include "algorithms/connectivity.h"
#include "algorithms/kcore.h"
#include "algorithms/triangle.h"
#include "dynamic/dynamic_graph.h"
#include "graph/compression/compressed_graph.h"
#include "graph/edge_map.h"
#include "graph/graph_builder.h"
#include "graph/graph_view.h"
#include "parlib/counters.h"
#include "parlib/random.h"
#include "serve/dynamic_view.h"
#include "serve/query.h"
#include "serve/query_engine.h"
#include "serve/snapshot_manager.h"

namespace {

using gbbs::edge;
using gbbs::edge_map_options;
using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::serve::query;
using gbbs::serve::query_engine;
using gbbs::serve::query_kind;
using gbbs::serve::snapshot_manager;

using uw_update = gbbs::dynamic::update<empty_weight>;

// Every representation models the one traversal concept.
static_assert(gbbs::graph_view<gbbs::graph<empty_weight>>);
static_assert(gbbs::graph_view<gbbs::compressed_graph<empty_weight>>);
static_assert(gbbs::graph_view<gbbs::dynamic::dynamic_graph<empty_weight>>);
static_assert(gbbs::graph_view<gbbs::serve::dynamic_view<empty_weight>>);

std::vector<uw_update> inserts(const std::vector<std::pair<vertex_id,
                                                           vertex_id>>& es) {
  std::vector<uw_update> ups;
  ups.reserve(es.size());
  for (const auto& [u, v] : es) {
    ups.push_back({u, v, {}, gbbs::dynamic::update_op::insert});
  }
  return ups;
}

std::vector<uw_update> erases(const std::vector<std::pair<vertex_id,
                                                          vertex_id>>& es) {
  std::vector<uw_update> ups;
  ups.reserve(es.size());
  for (const auto& [u, v] : es) {
    ups.push_back({u, v, {}, gbbs::dynamic::update_op::erase});
  }
  return ups;
}

// A mixed batch schedule: each round inserts fresh random edges and
// erases a random subset of the currently live ones. Deterministic in
// `seed`.
struct mixed_schedule {
  explicit mixed_schedule(std::uint64_t seed, vertex_id n)
      : rng_(seed), n_(n) {}

  std::vector<uw_update> next_batch(std::size_t num_inserts,
                                    std::size_t num_erases) {
    std::vector<std::pair<vertex_id, vertex_id>> ins;
    for (std::size_t i = 0; i < num_inserts; ++i, ++k_) {
      const auto u = static_cast<vertex_id>(rng_.ith_rand(2 * k_) % n_);
      const auto v = static_cast<vertex_id>(rng_.ith_rand(2 * k_ + 1) % n_);
      if (u == v) continue;
      ins.emplace_back(u, v);
      live_.insert({std::min(u, v), std::max(u, v)});
    }
    std::vector<std::pair<vertex_id, vertex_id>> del;
    std::vector<std::pair<vertex_id, vertex_id>> live_list(live_.begin(),
                                                           live_.end());
    for (std::size_t i = 0; i < num_erases && !live_list.empty();
         ++i, ++k_) {
      const auto pick = static_cast<std::size_t>(rng_.ith_rand(2 * k_) %
                                                 live_list.size());
      del.push_back(live_list[pick]);
      live_.erase(live_list[pick]);
    }
    auto batch = inserts(ins);
    auto era = erases(del);
    batch.insert(batch.end(), era.begin(), era.end());
    return batch;
  }

  parlib::random rng_;
  vertex_id n_;
  std::size_t k_ = 0;
  std::set<std::pair<vertex_id, vertex_id>> live_;
};

edge_map_options mode_options(int mode) {
  edge_map_options o;
  if (mode == 0) {
    o.allow_dense = false;
    o.use_blocked = true;
  } else if (mode == 1) {
    o.allow_dense = false;
    o.use_blocked = false;
  } else {
    o.threshold = 0;  // always dense
  }
  return o;
}

// BFS / k-core / triangles / connectivity on `view` must equal the same
// algorithms on the compacted reference CSR.
template <typename View>
void expect_view_matches_reference(const View& view,
                                   const gbbs::graph<empty_weight>& ref) {
  ASSERT_EQ(view.num_vertices(), ref.num_vertices());
  ASSERT_EQ(view.num_edges(), ref.num_edges());
  const vertex_id n = ref.num_vertices();
  for (vertex_id v = 0; v < n; ++v) {
    ASSERT_EQ(view.out_degree(v), ref.out_degree(v)) << "degree of " << v;
  }
  // BFS from a few sources, in every edge_map mode (dense exercises the
  // in-side early-exit decode, blocked the prefix-summed range access).
  for (vertex_id src : {vertex_id{0}, static_cast<vertex_id>(n / 2),
                        static_cast<vertex_id>(n - 1)}) {
    const auto want = gbbs::bfs(ref, src);
    for (int mode = 0; mode < 3; ++mode) {
      EXPECT_EQ(gbbs::bfs(view, src, mode_options(mode)), want)
          << "bfs mode " << mode << " from " << src;
    }
  }
  EXPECT_EQ(gbbs::kcore(view).coreness, gbbs::kcore(ref).coreness);
  EXPECT_EQ(gbbs::triangle_count(view), gbbs::triangle_count(ref));
  EXPECT_TRUE(gbbs::same_partition(gbbs::connectivity(view),
                                   gbbs::connectivity(ref)));
}

// ---- the randomized equivalence suite -------------------------------------

TEST(DynamicViewEquivalence, MixedInsertEraseSchedules) {
  auto& ctr = parlib::event_counters::global();
  for (std::uint64_t seed : {7u, 21u, 63u}) {
    const vertex_id n = 192;
    // Huge threshold: the overlay never auto-compacts, so every round
    // queries a genuinely uncompacted view.
    snapshot_manager<empty_weight> mgr(n, /*compact_threshold=*/1e9);
    mixed_schedule sched(seed, n);
    for (int round = 0; round < 6; ++round) {
      mgr.ingest(sched.next_batch(/*num_inserts=*/140, /*num_erases=*/45));
      auto idx = mgr.overlay().read();
      ASSERT_NE(idx, nullptr);
      ASSERT_GT(idx->overlay_size(), 0u) << "overlay unexpectedly empty";
      const auto ref = mgr.live().snapshot();
      const auto before = ctr.merged_csr_materializations.load();
      // The serve-side view over the published overlay index...
      expect_view_matches_reference(
          gbbs::serve::dynamic_view<empty_weight>(idx), ref);
      // ...and the live dynamic graph itself, traversed uncompacted.
      expect_view_matches_reference(mgr.live(), ref);
      // None of the view-side traversals materialized the merged CSR.
      EXPECT_EQ(ctr.merged_csr_materializations.load(), before);
    }
  }
}

// ---- the acceptance check: no materialization on the analytics path -------

TEST(DynamicViewEquivalence, EngineAnalyticsNeverMaterializeUnlessStale) {
  const vertex_id n = 96;
  snapshot_manager<empty_weight> mgr(n, /*compact_threshold=*/1e9);
  mixed_schedule sched(5, n);
  mgr.ingest(sched.next_batch(200, 30));
  mgr.publish();  // the published version carries a non-empty overlay
  mgr.ingest(sched.next_batch(60, 10));  // plus unpublished ingest on top

  auto snap = mgr.pin();
  ASSERT_TRUE(snap);
  ASSERT_NE(snap.overlay(), nullptr) << "test needs a non-empty overlay";

  const auto live_ref = mgr.live().snapshot();
  auto& ctr = parlib::event_counters::global();
  const auto before = ctr.merged_csr_materializations.load();
  {
    query_engine<empty_weight> engine(mgr.store(), &mgr.overlay(), 3);
    auto fb = engine.submit({query_kind::bfs_distance, 0, n / 2});
    auto fk = engine.submit({query_kind::kcore_max, 0, 0});
    auto ft = engine.submit({query_kind::triangles, 0, 0});
    auto fc = engine.submit({query_kind::connectivity_refine, 0, 0});
    EXPECT_EQ(fb.get().value, gbbs::bfs(live_ref, 0)[n / 2]);
    EXPECT_EQ(fk.get().value, gbbs::kcore(live_ref).max_core);
    EXPECT_EQ(ft.get().value, gbbs::triangle_count(live_ref));
    EXPECT_EQ(fc.get().value,
              gbbs::component_representatives(gbbs::connectivity(live_ref))
                  .size());
    engine.drain();
    // Fresh analytics on a non-empty overlay: zero merged-CSR builds.
    EXPECT_EQ(ctr.merged_csr_materializations.load(), before);

    // Pinned-version analytics (no overlay engine involved) also traverse
    // the version's overlay through a dynamic_view — still no merge.
    (void)execute_query(snap, {query_kind::triangles, 0, 0});
    EXPECT_EQ(ctr.merged_csr_materializations.load(), before);

    // An explicitly-stale query pays the merge — once per version.
    query stale_tri{query_kind::triangles, 0, 0};
    stale_tri.stale = true;
    auto fs1 = engine.submit(stale_tri);
    (void)fs1.get();
    EXPECT_EQ(ctr.merged_csr_materializations.load(), before + 1);
    auto fs2 = engine.submit(stale_tri);  // memoized: no second build
    (void)fs2.get();
    EXPECT_EQ(ctr.merged_csr_materializations.load(), before + 1);
  }
}

// ---- in-edge overlay on the live directed graph ---------------------------

TEST(InEdgeOverlay, DirectedLiveGraphMatchesSnapshot) {
  const vertex_id n = 128;
  gbbs::dynamic::dynamic_graph<empty_weight> dg(n, /*symmetric=*/false);
  parlib::random rng(11);
  std::set<std::pair<vertex_id, vertex_id>> live;
  std::size_t k = 0;
  for (int round = 0; round < 5; ++round) {
    std::vector<uw_update> batch;
    for (int i = 0; i < 120; ++i, ++k) {
      const auto u = static_cast<vertex_id>(rng.ith_rand(2 * k) % n);
      const auto v = static_cast<vertex_id>(rng.ith_rand(2 * k + 1) % n);
      if (u == v) continue;
      batch.push_back({u, v, {}, gbbs::dynamic::update_op::insert});
      live.insert({u, v});
    }
    std::vector<std::pair<vertex_id, vertex_id>> live_list(live.begin(),
                                                           live.end());
    for (int i = 0; i < 30 && !live_list.empty(); ++i, ++k) {
      const auto pick = static_cast<std::size_t>(rng.ith_rand(2 * k) %
                                                 live_list.size());
      batch.push_back({live_list[pick].first, live_list[pick].second, {},
                       gbbs::dynamic::update_op::erase});
      live.erase(live_list[pick]);
    }
    dg.apply(std::move(batch));

    const auto snap = dg.snapshot();
    ASSERT_FALSE(snap.symmetric());
    for (vertex_id v = 0; v < n; ++v) {
      ASSERT_EQ(dg.in_degree(v), snap.in_degree(v)) << "in-degree of " << v;
      std::vector<vertex_id> got;
      dg.map_in_neighbors_early_exit(
          v, [&](vertex_id, vertex_id u, empty_weight) {
            got.push_back(u);
            return true;
          });
      const auto want_span = snap.in_neighbors(v);
      const std::vector<vertex_id> want(want_span.begin(), want_span.end());
      ASSERT_EQ(got, want) << "in-neighbors of " << v;
    }
    // The direction-optimized dense edgeMap scans in-edges: a dense-mode
    // BFS on the live directed graph must match the snapshot's.
    for (int mode : {0, 2}) {
      EXPECT_EQ(gbbs::bfs(dg, 0, mode_options(mode)),
                gbbs::bfs(snap, 0, mode_options(mode)))
          << "mode " << mode;
    }
  }
}

// ---- persistent index: O(batch) refresh shares untouched buckets ----------

TEST(OverlayIndex, IncrementalRefreshSharesUntouchedBuckets) {
  const vertex_id n = 4096;
  snapshot_manager<empty_weight> mgr(n, /*compact_threshold=*/1e9);
  // Seed a wide overlay: one edge per vertex pair (v, v+1) over half the
  // graph, so the index has many buckets.
  std::vector<std::pair<vertex_id, vertex_id>> wide;
  for (vertex_id v = 0; v + 1 < n / 2; v += 2) wide.emplace_back(v, v + 1);
  mgr.ingest(inserts(wide));
  auto idx1 = mgr.overlay().read();
  ASSERT_GT(idx1->bucket_count(), 8u);

  // A small batch touching two vertices (four mirrored endpoints).
  mgr.ingest(inserts({{1000, 1001}, {2000, 2001}}));
  auto idx2 = mgr.overlay().read();
  ASSERT_EQ(idx2->bucket_count(), idx1->bucket_count());

  std::size_t shared = 0, rebuilt = 0;
  for (std::size_t b = 0; b < idx2->bucket_count(); ++b) {
    if (idx1->buckets[b] == idx2->buckets[b]) {
      ++shared;
    } else {
      ++rebuilt;
    }
  }
  // At most one bucket per touched endpoint is rebuilt; the rest alias.
  EXPECT_LE(rebuilt, 4u);
  EXPECT_GT(shared, idx2->bucket_count() / 2);

  // Content is still right on both sides of the split.
  EXPECT_TRUE(idx2->contains_edge(1000, 1001));
  EXPECT_TRUE(idx2->contains_edge(0, 1));
  EXPECT_EQ(idx2->degree(2000), 1u);

  // The untouched rows are shared at row granularity too: spot-check that
  // a vertex far from the batch resolves to the same row object.
  const auto* r1 = idx1->row(4);
  const auto* r2 = idx2->row(4);
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r1->entries.get(), r2->entries.get());
}

// ---- live edge count feeds the direction threshold ------------------------

TEST(OverlayIndex, LiveEdgeCountIncludesOverlay) {
  // Seed graph: a 64-vertex path (126 directed edges after mirroring).
  const vertex_id n = 64;
  std::vector<edge<empty_weight>> path;
  for (vertex_id v = 0; v + 1 < n; ++v) path.push_back({v, v + 1, {}});
  auto seed = gbbs::build_symmetric_graph<empty_weight>(n, path);
  const auto base_m = seed.num_edges();

  snapshot_manager<empty_weight> mgr(std::move(seed),
                                     /*compact_threshold=*/1e9);
  // 8 fresh undirected edges -> +16 directed; 2 erased -> -4.
  mgr.ingest(inserts({{0, 10}, {0, 20}, {0, 30}, {1, 11}, {2, 12}, {3, 13},
                      {4, 14}, {5, 15}}));
  mgr.ingest(erases({{0, 10}, {1, 11}}));
  auto idx = mgr.overlay().read();
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->m, base_m + 16 - 4);
  gbbs::serve::dynamic_view<empty_weight> dv(idx);
  EXPECT_EQ(dv.num_edges(), mgr.live().num_edges());
  EXPECT_EQ(dv.num_edges(), mgr.live().snapshot().num_edges());
}

// ---- merged-row range access ----------------------------------------------

TEST(MergedRowRange, MatchesFullDecodeSlices) {
  const vertex_id n = 80;
  snapshot_manager<empty_weight> mgr(n, /*compact_threshold=*/1e9);
  mixed_schedule sched(3, n);
  mgr.ingest(sched.next_batch(300, 60));
  auto idx = mgr.overlay().read();
  gbbs::serve::dynamic_view<empty_weight> dv(idx);
  const auto& live = mgr.live();
  for (vertex_id v = 0; v < n; ++v) {
    std::vector<vertex_id> full;
    dv.map_out_neighbors(v, [&](vertex_id, vertex_id ngh, empty_weight) {
      full.push_back(ngh);
    });
    const std::size_t deg = full.size();
    for (auto [lo, hi] : std::vector<std::pair<std::size_t, std::size_t>>{
             {0, deg},
             {0, deg / 2},
             {deg / 2, deg},
             {deg / 3, 2 * deg / 3},
             {deg, deg + 5}}) {
      std::vector<vertex_id> want(
          full.begin() + static_cast<long>(std::min(lo, deg)),
          full.begin() + static_cast<long>(std::min(hi, deg)));
      std::vector<vertex_id> got_view, got_live;
      dv.map_out_neighbors_range(
          v, lo, hi, [&](vertex_id, vertex_id ngh, empty_weight) {
            got_view.push_back(ngh);
          });
      live.map_out_neighbors_range(
          v, lo, hi, [&](vertex_id, vertex_id ngh, empty_weight) {
            got_live.push_back(ngh);
          });
      ASSERT_EQ(got_view, want) << "view range [" << lo << "," << hi
                                << ") of " << v;
      ASSERT_EQ(got_live, want) << "live range [" << lo << "," << hi
                                << ") of " << v;
    }
  }
}

}  // namespace
