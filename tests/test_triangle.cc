// Triangle counting vs the brute-force oracle, with closed-form checks on
// structured graphs and compressed-graph parity.
#include <string>

#include <gtest/gtest.h>

#include "algorithms/triangle.h"
#include "graph/compression/compressed_graph.h"
#include "seq/reference.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

class TriangleSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, TriangleSuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(TriangleSuite, MatchesBruteForce) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  EXPECT_EQ(gbbs::triangle_count(g), gbbs::seq::triangle_count(g))
      << GetParam();
}

TEST(Triangle, CompleteGraphBinomial) {
  // K_n has n-choose-3 triangles.
  for (vertex_id n : {4u, 10u, 30u}) {
    auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
        n, gbbs::complete_edges(n));
    const std::uint64_t expected =
        static_cast<std::uint64_t>(n) * (n - 1) * (n - 2) / 6;
    EXPECT_EQ(gbbs::triangle_count(g), expected) << n;
  }
}

TEST(Triangle, TriangleFreeGraphsReportZero) {
  auto grid = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      100, gbbs::grid2d_edges(10, 10));
  EXPECT_EQ(gbbs::triangle_count(grid), 0u);
  auto star = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      100, gbbs::star_edges(100));
  EXPECT_EQ(gbbs::triangle_count(star), 0u);
  auto torus = gbbs::torus3d_symmetric(5);
  EXPECT_EQ(gbbs::triangle_count(torus), 0u);
}

TEST(Triangle, SingleTriangle) {
  std::vector<gbbs::edge<gbbs::empty_weight>> edges = {
      {0, 1, {}}, {1, 2, {}}, {0, 2, {}}};
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(3, edges);
  EXPECT_EQ(gbbs::triangle_count(g), 1u);
}

TEST(Triangle, CompressedMatchesUncompressed) {
  auto g = gbbs::testing::make_symmetric("rmat");
  auto cg = gbbs::compressed_graph<gbbs::empty_weight>::compress(g);
  EXPECT_EQ(gbbs::triangle_count(g), gbbs::triangle_count(cg));
}

TEST(Triangle, EmptyGraph) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(10, {});
  EXPECT_EQ(gbbs::triangle_count(g), 0u);
}

}  // namespace
