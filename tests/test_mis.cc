// MIS (rootset + prefix variants): independence and maximality over the
// suite, determinism, seed variation.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/mis.h"
#include "graph/compression/compressed_graph.h"
#include "seq/reference.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

class MisSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, MisSuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(MisSuite, RootsetIsValidMis) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto in_set = gbbs::mis_rootset(g);
  EXPECT_TRUE(gbbs::seq::is_valid_mis(g, in_set)) << GetParam();
}

TEST_P(MisSuite, PrefixIsValidMis) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto in_set = gbbs::mis_prefix(g);
  EXPECT_TRUE(gbbs::seq::is_valid_mis(g, in_set)) << GetParam();
}

TEST_P(MisSuite, DifferentSeedsStillValid) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  for (std::uint64_t seed : {1ull, 99ull, 12345ull}) {
    auto in_set = gbbs::mis_rootset(g, parlib::random(seed));
    ASSERT_TRUE(gbbs::seq::is_valid_mis(g, in_set)) << seed;
  }
}

TEST(Mis, RootsetMatchesSequentialGreedyOnSamePermutation) {
  // Both the rootset algorithm and the lexicographically-first greedy over
  // the same permutation must produce the *same* set [19].
  auto g = gbbs::testing::make_symmetric("erdos_renyi");
  const auto rng = parlib::random(7);
  auto in_set = gbbs::mis_rootset(g, rng);
  // Sequential greedy in permutation order.
  const auto perm = parlib::random_permutation(g.num_vertices(), rng);
  std::vector<std::uint8_t> greedy(g.num_vertices(), 0);
  std::vector<std::uint8_t> blocked(g.num_vertices(), 0);
  for (vertex_id i = 0; i < g.num_vertices(); ++i) {
    const vertex_id v = perm[i];
    if (!blocked[v]) {
      greedy[v] = 1;
      for (vertex_id u : g.out_neighbors(v)) blocked[u] = 1;
    }
  }
  EXPECT_EQ(in_set, greedy);
}

TEST(Mis, EmptyGraphAllInMis) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(20, {});
  auto in_set = gbbs::mis_rootset(g);
  for (auto f : in_set) ASSERT_EQ(f, 1);
}

TEST(Mis, CompleteGraphHasExactlyOne) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      40, gbbs::complete_edges(40));
  auto in_set = gbbs::mis_rootset(g);
  int count = 0;
  for (auto f : in_set) count += f;
  EXPECT_EQ(count, 1);
}

TEST(Mis, StarPicksLeavesOrCenter) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      100, gbbs::star_edges(100));
  auto in_set = gbbs::mis_rootset(g);
  ASSERT_TRUE(gbbs::seq::is_valid_mis(g, in_set));
  if (in_set[0]) {
    for (vertex_id v = 1; v < 100; ++v) ASSERT_EQ(in_set[v], 0);
  } else {
    for (vertex_id v = 1; v < 100; ++v) ASSERT_EQ(in_set[v], 1);
  }
}

TEST(Mis, WorksOnCompressedGraph) {
  auto g = gbbs::testing::make_symmetric("rmat");
  auto cg = gbbs::compressed_graph<gbbs::empty_weight>::compress(g);
  auto a = gbbs::mis_rootset(g, parlib::random(3));
  auto b = gbbs::mis_rootset(cg, parlib::random(3));
  EXPECT_EQ(a, b);  // same permutation, same (deterministic) DAG
  EXPECT_TRUE(gbbs::seq::is_valid_mis(g, b));
}

}  // namespace
