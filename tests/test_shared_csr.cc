// Shared-ownership CSR storage (graph.h) and its serving-layer contract:
//   * graph<W> copies share one refcounted CSR block (O(1) copy); the
//     copy-on-write escape hatch (pack_out / unshare) detaches mutators
//     without disturbing other owners;
//   * publish shares the merged CSR between the published version and the
//     dynamic graph's new base — zero post-merge copies — and an
//     empty-overlay publish allocates no CSR at all (O(1));
//   * lifetime: the arrays outlive the writer — a reader holding a pinned
//     snapshot (or a graph copied out of one) keeps reading after the
//     snapshot_manager, its store, and the dynamic graph are destroyed;
//     concurrently with publishes, under TSan.
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/bfs.h"
#include "algorithms/connectivity.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "serve/query.h"
#include "serve/snapshot_manager.h"
#include "serve/snapshot_store.h"

namespace {

using gbbs::edge;
using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::serve::pinned_snapshot;
using gbbs::serve::snapshot_manager;

using uw_edge = edge<empty_weight>;
using uw_update = gbbs::dynamic::update<empty_weight>;

std::vector<uw_update> inserts(const std::vector<uw_edge>& edges) {
  std::vector<uw_update> ups;
  ups.reserve(edges.size());
  for (const auto& e : edges) {
    ups.push_back({e.u, e.v, {}, gbbs::dynamic::update_op::insert});
  }
  return ups;
}

template <typename G1, typename G2>
void expect_same_csr(const G1& a, const G2& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (vertex_id v = 0; v < a.num_vertices(); ++v) {
    auto na = a.out_neighbors(v);
    auto nb = b.out_neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "degree of " << v;
    for (std::size_t j = 0; j < na.size(); ++j) {
      ASSERT_EQ(na[j], nb[j]) << "neighbor " << j << " of " << v;
    }
  }
}

// ---- copy / COW semantics -------------------------------------------------

TEST(SharedCsr, CopySharesStorage) {
  auto g = gbbs::build_symmetric_graph<empty_weight>(
      4, std::vector<uw_edge>{{0, 1, {}}, {1, 2, {}}});
  EXPECT_EQ(g.storage_use_count(), 1);
  gbbs::graph<empty_weight> copy = g;
  EXPECT_TRUE(copy.shares_storage(g));
  EXPECT_EQ(g.storage_use_count(), 2);
  expect_same_csr(copy, g);
  {
    gbbs::graph<empty_weight> third = copy;
    EXPECT_EQ(g.storage_use_count(), 3);
  }
  EXPECT_EQ(g.storage_use_count(), 2);
}

TEST(SharedCsr, PackOutDetachesViaCow) {
  auto g = gbbs::build_symmetric_graph<empty_weight>(
      4, std::vector<uw_edge>{{0, 1, {}}, {0, 2, {}}, {0, 3, {}}});
  gbbs::graph<empty_weight> copy = g;
  ASSERT_TRUE(copy.shares_storage(g));
  // Mutating the copy clones the block; the original is untouched.
  copy.pack_out(0, [](vertex_id, vertex_id ngh, empty_weight) {
    return ngh != 2;
  });
  EXPECT_FALSE(copy.shares_storage(g));
  EXPECT_EQ(copy.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(0), 3u);
  auto nghs = g.out_neighbors(0);
  EXPECT_EQ(std::vector<vertex_id>(nghs.begin(), nghs.end()),
            (std::vector<vertex_id>{1, 2, 3}));
}

TEST(SharedCsr, UnshareClonesOnlyWhenShared) {
  auto g = gbbs::build_symmetric_graph<empty_weight>(
      3, std::vector<uw_edge>{{0, 1, {}}});
  g.unshare();  // unique owner: must keep the same block
  EXPECT_EQ(g.storage_use_count(), 1);
  gbbs::graph<empty_weight> copy = g;
  copy.unshare();  // shared: detaches
  EXPECT_FALSE(copy.shares_storage(g));
  EXPECT_EQ(g.storage_use_count(), 1);
  EXPECT_EQ(copy.storage_use_count(), 1);
  expect_same_csr(copy, g);
}

// ---- zero-copy publish ----------------------------------------------------

TEST(SharedCsr, EagerPublishSharesArraysWithCompactedBase) {
  // compact_threshold == 0 disables auto-compaction, making publish the
  // compaction point: one merged-CSR build, shared outright.
  snapshot_manager<empty_weight> mgr(16, /*compact_threshold=*/0.0);
  mgr.ingest(inserts({{0, 1, {}}, {1, 2, {}}, {2, 3, {}}}));
  mgr.publish();
  auto snap = mgr.pin();
  ASSERT_TRUE(snap);
  // One merged-CSR build backs both the published version and the new
  // base: same refcounted block, not equal copies.
  EXPECT_TRUE(snap.view().shares_storage(mgr.live().base()));
}

TEST(SharedCsr, DeltaPublishSharesBaseAndDefersMerge) {
  // Default policy: publish attaches the overlay index to the shared base
  // instead of merging. Point reads see the live state; the merged CSR is
  // materialized lazily (and is NOT the writer's base block).
  snapshot_manager<empty_weight> mgr(16);
  mgr.ingest(inserts({{0, 1, {}}, {1, 2, {}}}));
  const std::size_t compactions_before = mgr.num_compactions();
  mgr.publish();
  EXPECT_EQ(mgr.num_compactions(), compactions_before)
      << "delta publish must not merge";
  auto snap = mgr.pin();
  ASSERT_TRUE(snap);
  ASSERT_NE(snap.overlay(), nullptr);
  EXPECT_TRUE(snap.overlay()->base.shares_storage(mgr.live().base()));
  EXPECT_EQ(execute_query(snap, {gbbs::serve::query_kind::degree, 1, 0})
                .value,
            2u);
  // Lazy materialization produces the live view (memoized per version).
  EXPECT_EQ(snap.view().num_edges(), 4u);
  EXPECT_EQ(snap.view().out_degree(1), 2u);
}

TEST(SharedCsr, EmptyOverlayPublishAllocatesNoCsr) {
  // Seed with a real CSR so the base covers the vertex set, then ingest a
  // raw batch that normalizes away entirely (self-loop): updates are
  // counted as ingested but the overlay stays empty.
  auto seed = gbbs::build_symmetric_graph<empty_weight>(
      8, std::vector<uw_edge>{{0, 1, {}}, {2, 3, {}}});
  snapshot_manager<empty_weight> mgr(seed);
  mgr.ingest({{5, 5, {}, gbbs::dynamic::update_op::insert}});
  ASSERT_EQ(mgr.live().delta_size(), 0u);
  const std::size_t compactions_before = mgr.num_compactions();
  const std::uint64_t v_before = mgr.current_version();
  mgr.publish();
  EXPECT_GT(mgr.current_version(), v_before);  // a new version went out
  // ...but no merge ran and no arrays were built: the new version IS the
  // base, shared.
  EXPECT_EQ(mgr.num_compactions(), compactions_before);
  auto snap = mgr.pin();
  EXPECT_EQ(snap.overlay(), nullptr);
  EXPECT_TRUE(snap.view().shares_storage(mgr.live().base()));
  EXPECT_TRUE(snap.view().shares_storage(seed));  // still the seed arrays
}

TEST(SharedCsr, AutoCompactionHandsEmptyOverlayToPublish) {
  // Threshold small enough that the mirrored batch (overlay floor is
  // max(base_m, 1024) * frac = 256) auto-compacts during ingest; publish
  // then takes the O(1) shared-handle path.
  const vertex_id n = 512;
  std::vector<uw_edge> edges;
  for (vertex_id v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, {}});
  snapshot_manager<empty_weight> mgr(n, /*compact_threshold=*/0.25);
  mgr.ingest(inserts(edges));  // 2 * 511 overlay entries > 256: compacts
  EXPECT_GT(mgr.num_compactions(), 0u);
  ASSERT_EQ(mgr.live().delta_size(), 0u);
  const std::size_t compactions_before = mgr.num_compactions();
  mgr.publish();
  EXPECT_EQ(mgr.num_compactions(), compactions_before) << "publish must not "
      "re-merge an already-compacted overlay";
  auto snap = mgr.pin();
  EXPECT_TRUE(snap.view().shares_storage(mgr.live().base()));
  expect_same_csr(snap.view(),
                  gbbs::build_symmetric_graph<empty_weight>(n, edges));
}

// ---- lifetime: arrays outlive the writer ----------------------------------

TEST(SharedCsr, PinnedReaderOutlivesManagerAndStore) {
  std::vector<uw_edge> edges;
  for (vertex_id v = 0; v + 1 < 64; ++v) edges.push_back({v, v + 1, {}});

  pinned_snapshot<empty_weight> pinned;
  gbbs::graph<empty_weight> kept;
  {
    snapshot_manager<empty_weight> mgr(64);
    mgr.ingest(inserts(edges));
    mgr.publish();
    pinned = mgr.pin();
    ASSERT_TRUE(pinned);
    // The version's overlay rides on the writer's base block; view()
    // (lazy merged CSR) is memoized in the shared payload. Both handles
    // survive the writer.
    ASSERT_NE(pinned.overlay(), nullptr);
    EXPECT_TRUE(pinned.overlay()->base.shares_storage(mgr.live().base()));
    kept = pinned.view();  // O(1) shared handle onto the memoized merge
  }  // writer, store, and dynamic graph destroyed here

  // The pin (and the copied graph) still own valid data.
  EXPECT_EQ(pinned.version(), 2u);
  EXPECT_EQ(pinned.view().num_edges(), 2u * 63u);
  EXPECT_TRUE(pinned.components().connected(0, 63));
  auto dist = gbbs::bfs(kept, 0);
  EXPECT_EQ(dist[63], 63u);
  expect_same_csr(kept, gbbs::build_symmetric_graph<empty_weight>(64, edges));
}

// Readers pin and traverse concurrently with a writer that publishes (and
// hand-off compacts) every batch, then the writer dies while readers are
// still holding snapshots. TSan must stay clean: all sharing goes through
// refcounted immutable blocks.
TEST(SharedCsr, ConcurrentReadersSurviveWriterTeardown) {
  const std::uint32_t scale = 9;
  const vertex_id n = vertex_id{1} << scale;
  auto full = gbbs::rmat_symmetric(scale, std::size_t{6} << scale, 7);
  // One direction of each undirected edge, in vertex order.
  std::vector<uw_edge> stream;
  for (const auto& e : full.edges()) {
    if (e.u < e.v) stream.push_back(e);
  }
  const std::size_t batch = (stream.size() + 7) / 8;

  std::vector<pinned_snapshot<empty_weight>> grabbed(4);
  std::atomic<bool> writer_done{false};
  {
    snapshot_manager<empty_weight> mgr(n, /*compact_threshold=*/0.25);
    std::vector<std::thread> readers;
    for (std::size_t t = 0; t < grabbed.size(); ++t) {
      readers.emplace_back([&, t] {
        std::uint64_t last = 0;
        do {
          auto snap = mgr.pin();
          ASSERT_TRUE(snap);
          EXPECT_GE(snap.version(), last);
          last = snap.version();
          std::uint64_t degree_sum = 0;
          const auto& g = snap.view();
          for (vertex_id v = 0; v < g.num_vertices(); ++v) {
            degree_sum += g.out_degree(v);
          }
          EXPECT_EQ(degree_sum, g.num_edges());
          grabbed[t] = std::move(snap);  // keep the freshest one
        } while (!writer_done.load(std::memory_order_acquire));
      });
    }
    for (std::size_t off = 0; off < stream.size(); off += batch) {
      const std::size_t hi = std::min(off + batch, stream.size());
      std::vector<uw_edge> slice(
          stream.begin() + static_cast<std::ptrdiff_t>(off),
          stream.begin() + static_cast<std::ptrdiff_t>(hi));
      mgr.ingest(inserts(slice));
      mgr.publish();
    }
    writer_done.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();
  }  // manager destroyed; grabbed pins survive

  for (auto& snap : grabbed) {
    ASSERT_TRUE(snap);
    const auto& g = snap.view();
    std::uint64_t degree_sum = 0;
    for (vertex_id v = 0; v < g.num_vertices(); ++v) {
      degree_sum += g.out_degree(v);
    }
    EXPECT_EQ(degree_sum, g.num_edges());
    EXPECT_TRUE(gbbs::same_partition(
        snap.components().materialize(g.num_vertices()),
        gbbs::connectivity(g)));
  }
}

}  // namespace
