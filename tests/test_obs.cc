// Tests for the observability layer: worker-sharded counters and
// histograms (concurrent increment/snapshot correctness — runs in the
// TSan CI job), histogram quantiles against the exact obs::percentile
// reference, trace-span nesting, the seqlock-consistent event-counter
// snapshot vs a racing reset (the pre-obs torn-read bug), the registry's
// attach/detach-merge lifecycle, both render formats, and the live
// metrics endpoint end-to-end over a real socket.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "dynamic/update_batch.h"
#include "obs/metrics.h"
#include "obs/metrics_server.h"
#include "obs/registry.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "parlib/counters.h"
#include "parlib/scheduler.h"
#include "serve/query.h"
#include "serve/query_engine.h"
#include "serve/snapshot_manager.h"

namespace {

using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::obs::histogram;

// Multi-worker scheduler even on 1-core CI hosts (same pattern as
// test_scheduler.cc) so sharded cells actually spread across slots.
struct force_workers {
  force_workers() { parlib::scheduler::set_num_workers(4); }
};
const force_workers kForceWorkers;

// ---- sharded counter -------------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsSumExact) {
  gbbs::obs::counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // Unregistered threads share the overflow slot; registered ones get
      // their own — both must count exactly.
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  // Concurrent reads must be safe (values racy, never torn/crashing).
  for (int r = 0; r < 100; ++r) {
    EXPECT_LE(c.value(), kThreads * kPerThread);
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsCounter, RegisteredWorkersUseOwnSlots) {
  gbbs::obs::counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      parlib::worker_guard wg;
      for (int i = 0; i < 1000; ++i) c.add(2);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 3u * 1000u * 2u);
}

// ---- histogram -------------------------------------------------------------

TEST(ObsHistogram, BucketIndexLayout) {
  // Exact unit buckets below 8 ns.
  for (std::uint64_t ns = 0; ns < 8; ++ns) {
    EXPECT_EQ(histogram::bucket_index(ns), ns);
  }
  // Monotone non-decreasing, and every index within range.
  std::size_t prev = 0;
  for (std::uint64_t ns = 0; ns < (1u << 20); ns += 97) {
    const std::size_t idx = histogram::bucket_index(ns);
    EXPECT_GE(idx, prev);
    EXPECT_LT(idx, histogram::kBuckets);
    prev = idx;
  }
  EXPECT_LT(histogram::bucket_index(~std::uint64_t{0}), histogram::kBuckets);
}

TEST(ObsHistogram, QuantilesMatchExactPercentileReference) {
  histogram h;
  std::vector<double> samples_s;
  // Deterministic values spanning ~6 octaves (1us .. 64us-ish) with a
  // skewed tail, the shape of a real latency distribution.
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 20000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t ns = 1000 + x % 64000;
    h.record_ns(ns);
    samples_s.push_back(static_cast<double>(ns) / 1e9);
  }
  std::sort(samples_s.begin(), samples_s.end());
  const auto s = h.read();
  EXPECT_EQ(s.count, samples_s.size());
  // max is exact; sum is exact.
  EXPECT_DOUBLE_EQ(s.max_s, samples_s.back());
  double sum = 0;
  for (double v : samples_s) sum += v;
  EXPECT_NEAR(s.sum_s, sum, 1e-12);
  // Quantiles within ~6% relative of the exact interpolated reference
  // (bucket width is <= 12.5%; the estimate interpolates inside the
  // bucket, so half-width is the honest bound — allow 10% for slack).
  const double tol = 0.10;
  EXPECT_NEAR(s.p50_s, gbbs::obs::percentile(samples_s, 0.50),
              tol * gbbs::obs::percentile(samples_s, 0.50));
  EXPECT_NEAR(s.p90_s, gbbs::obs::percentile(samples_s, 0.90),
              tol * gbbs::obs::percentile(samples_s, 0.90));
  EXPECT_NEAR(s.p99_s, gbbs::obs::percentile(samples_s, 0.99),
              tol * gbbs::obs::percentile(samples_s, 0.99));
}

TEST(ObsHistogram, ConcurrentRecordAndSnapshotStress) {
  histogram h;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 30000;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record_ns(static_cast<std::uint64_t>(t) * 1000 + i % 512);
      }
    });
  }
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto s = h.read();
      EXPECT_LE(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
    }
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsHistogram, MergeFromFoldsContents) {
  histogram a, b;
  a.record_ns(1000);
  a.record_ns(2000);
  b.record_ns(4000);
  a.merge_from(b);
  const auto s = a.read();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.max_s, 4000 / 1e9);
  EXPECT_NEAR(s.sum_s, 7000 / 1e9, 1e-12);
}

// ---- event counters: snapshot vs reset (the torn-read fix) -----------------

TEST(ObsEventCounters, SnapshotNeverTornAcrossReset) {
  auto& ec = parlib::event_counters::global();
  ec.reset();
  constexpr std::uint64_t kV = 424242;
  auto set_all = [&] {
    ec.edgemap_slots_written.store(kV, std::memory_order_relaxed);
    ec.edgemap_edges_examined.store(kV, std::memory_order_relaxed);
    ec.fetch_add_ops.store(kV, std::memory_order_relaxed);
    ec.histogram_calls.store(kV, std::memory_order_relaxed);
    ec.merged_csr_materializations.store(kV, std::memory_order_relaxed);
    ec.sched_external_registrations.store(kV, std::memory_order_relaxed);
    ec.sched_unregistered_pardos.store(kV, std::memory_order_relaxed);
    ec.sched_reader_forks.store(kV, std::memory_order_relaxed);
    ec.sched_inline_fallbacks.store(kV, std::memory_order_relaxed);
  };
  auto uniform = [](const parlib::event_counters_snapshot& s,
                    std::uint64_t v) {
    return s.edgemap_slots_written == v && s.edgemap_edges_examined == v &&
           s.fetch_add_ops == v && s.histogram_calls == v &&
           s.merged_csr_materializations == v &&
           s.sched_external_registrations == v &&
           s.sched_unregistered_pardos == v && s.sched_reader_forks == v &&
           s.sched_inline_fallbacks == v;
  };
  // Repeat the race many times: fields at a known value, one thread
  // resets while others snapshot. Every snapshot must be entirely
  // pre-reset (all kV) or entirely post-reset (all 0) — a mix is the
  // torn read the seqlock exists to prevent.
  for (int round = 0; round < 200; ++round) {
    set_all();
    std::atomic<bool> go{false};
    std::thread resetter([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      ec.reset();
    });
    std::vector<parlib::event_counters_snapshot> seen(4);
    std::vector<std::thread> readers;
    for (auto& out : seen) {
      readers.emplace_back([&, p = &out] { *p = ec.snapshot(); });
    }
    go.store(true, std::memory_order_release);
    resetter.join();
    for (auto& t : readers) t.join();
    for (const auto& s : seen) {
      EXPECT_TRUE(uniform(s, kV) || uniform(s, 0))
          << "torn snapshot in round " << round;
    }
  }
  ec.reset();
}

// ---- trace spans -----------------------------------------------------------

TEST(ObsTrace, SpansNestAndRecord) {
  auto& reg = gbbs::obs::registry::global();
  histogram& outer = reg.get_histogram("span.test.outer");
  histogram& inner = reg.get_histogram("span.test.inner");
  const auto outer_before = outer.count();
  const auto inner_before = inner.count();
  EXPECT_EQ(gbbs::obs::trace_span::depth(), 0);
  {
    gbbs::obs::trace_span a(outer);
    EXPECT_EQ(gbbs::obs::trace_span::depth(), 1);
    {
      gbbs::obs::trace_span b(inner);
      EXPECT_EQ(gbbs::obs::trace_span::depth(), 2);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(gbbs::obs::trace_span::depth(), 1);
  }
  EXPECT_EQ(gbbs::obs::trace_span::depth(), 0);
  EXPECT_EQ(outer.count(), outer_before + 1);
  EXPECT_EQ(inner.count(), inner_before + 1);
  // Timing sanity: outer contains inner's 5ms sleep; both nonzero.
  const auto so = outer.read();
  const auto si = inner.read();
  EXPECT_GE(si.max_s, 0.004);
  EXPECT_GE(so.max_s, si.max_s * 0.5);
}

// ---- registry --------------------------------------------------------------

TEST(ObsRegistry, GetOrCreateReturnsStableReferences) {
  auto& reg = gbbs::obs::registry::global();
  auto& c1 = reg.get_counter("test.stable_counter");
  auto& c2 = reg.get_counter("test.stable_counter");
  EXPECT_EQ(&c1, &c2);
  auto& h1 = reg.get_histogram("test.stable_hist");
  auto& h2 = reg.get_histogram("test.stable_hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(ObsRegistry, AttachedHistogramSurvivesDetachViaMerge) {
  auto& reg = gbbs::obs::registry::global();
  const std::string name = "test.attach_merge";
  {
    histogram local;
    auto handle = reg.attach_histogram(name, &local);
    local.record_ns(10000);
    local.record_ns(20000);
    local.record_ns(30000);
    // While attached: visible in snapshots.
    const auto snap = reg.read();
    bool found = false;
    for (const auto& [n, h] : snap.histograms) {
      if (n == name) {
        found = true;
        EXPECT_EQ(h.count, 3u);
      }
    }
    EXPECT_TRUE(found);
  }  // handle detaches, then `local` dies
  // After the owner is gone the totals persist (merged into an
  // registry-owned histogram of the same name) — the property the
  // at-exit -metrics-json write depends on.
  const auto snap = reg.read();
  bool found = false;
  for (const auto& [n, h] : snap.histograms) {
    if (n == name) {
      found = true;
      EXPECT_EQ(h.count, 3u);
      EXPECT_DOUBLE_EQ(h.max_s, 30000 / 1e9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsRegistry, RuntimeBridgeExportsSchedulerState) {
  const auto snap = gbbs::obs::registry::global().read();
  auto counter_present = [&](const std::string& name) {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(counter_present("sched.steals"));
  EXPECT_TRUE(counter_present("sched.inline_fallbacks"));
  EXPECT_TRUE(counter_present("sched.reader_forks"));
  EXPECT_TRUE(counter_present("edgemap.slots_written"));
  bool workers_gauge = false;
  for (const auto& [n, v] : snap.gauges) {
    if (n == "sched.num_workers") {
      workers_gauge = true;
      EXPECT_EQ(v, 4);
    }
  }
  EXPECT_TRUE(workers_gauge);
}

TEST(ObsRegistry, RendersJsonAndPrometheus) {
  auto& reg = gbbs::obs::registry::global();
  reg.get_counter("test.render_counter").add(7);
  reg.get_histogram("test.render_hist").record_ns(5000);
  const auto snap = reg.read();
  const std::string json = gbbs::obs::registry::to_json(snap);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.render_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.render_hist\""), std::string::npos);
  // Balanced braces — cheap structural sanity (CI validates with a real
  // JSON parser on the exported file).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  const std::string prom = gbbs::obs::registry::to_prometheus(snap);
  EXPECT_NE(prom.find("# TYPE gbbs_test_render_counter counter"),
            std::string::npos);
  EXPECT_NE(prom.find("gbbs_test_render_hist{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("gbbs_sched_num_workers"), std::string::npos);
}

TEST(ObsRegistry, WriteJsonIsAtomicAndParsable) {
  const std::string path = "test_obs_metrics.json";
  ASSERT_TRUE(gbbs::obs::registry::global().write_json(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string doc;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) doc.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
}

// ---- live endpoint ---------------------------------------------------------

TEST(ObsMetricsServer, ServesPrometheusTextOverTcp) {
  gbbs::obs::metrics_server srv(/*port=*/0);  // kernel-assigned port
  ASSERT_TRUE(srv.ok());
  ASSERT_NE(srv.port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(srv.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, req, sizeof(req) - 1, 0),
            static_cast<ssize_t>(sizeof(req) - 1));
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(resp.find("gbbs_sched_num_workers"), std::string::npos);
  EXPECT_NE(resp.find("# TYPE"), std::string::npos);
}

// ---- pipeline integration --------------------------------------------------

TEST(ObsPipeline, IngestRecordsStageSpans) {
  auto& reg = gbbs::obs::registry::global();
  const auto normalize_before =
      reg.get_histogram("span.ingest.normalize").count();
  const auto apply_before = reg.get_histogram("span.ingest.apply").count();
  const auto cc_before =
      reg.get_histogram("span.ingest.connectivity").count();
  const auto refresh_before =
      reg.get_histogram("span.ingest.overlay_refresh").count();
  const auto publish_before =
      reg.get_histogram("span.ingest.publish").count();

  const vertex_id n = 64;
  gbbs::serve::snapshot_manager<empty_weight> mgr(n);
  for (int b = 0; b < 3; ++b) {
    std::vector<gbbs::dynamic::update<empty_weight>> raw;
    for (vertex_id u = 0; u < n - 1; ++u) {
      raw.push_back({u, static_cast<vertex_id>(u + 1 + b) % n, {},
                     gbbs::dynamic::update_op::insert});
    }
    mgr.ingest(std::move(raw));
    mgr.publish();
  }
  EXPECT_GE(reg.get_histogram("span.ingest.normalize").count(),
            normalize_before + 3);
  EXPECT_GE(reg.get_histogram("span.ingest.apply").count(),
            apply_before + 3);
  EXPECT_GE(reg.get_histogram("span.ingest.connectivity").count(),
            cc_before + 3);
  EXPECT_GE(reg.get_histogram("span.ingest.overlay_refresh").count(),
            refresh_before + 3);
  EXPECT_GE(reg.get_histogram("span.ingest.publish").count(),
            publish_before + 3);
}

TEST(ObsPipeline, QueryEngineReportsQueueWaitBreakdown) {
  const vertex_id n = 256;
  gbbs::serve::snapshot_manager<empty_weight> mgr(n);
  std::vector<gbbs::dynamic::update<empty_weight>> raw;
  for (vertex_id u = 0; u < n - 1; ++u) {
    raw.push_back({u, u + 1, {}, gbbs::dynamic::update_op::insert});
  }
  mgr.ingest(std::move(raw));
  mgr.publish();

  std::array<gbbs::serve::query_engine<empty_weight>::kind_stats,
             gbbs::serve::kNumQueryKinds>
      kinds{};
  {
    gbbs::serve::query_engine<empty_weight> engine(mgr.store(),
                                                   &mgr.overlay(), 2);
    std::vector<std::future<gbbs::serve::query_result>> futures;
    parlib::random rng(7);
    for (std::size_t qi = 0; qi < 200; ++qi) {
      futures.push_back(
          engine.submit(gbbs::serve::make_mixed_query(rng, qi, n)));
    }
    for (auto& f : futures) f.get();
    engine.drain();
    kinds = engine.latency_by_kind();
  }
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < gbbs::serve::kNumQueryKinds; ++k) {
    total += kinds[k].count;
    if (kinds[k].count == 0) continue;
    // Stage percentiles are populated and internally sane: each stage is
    // bounded by the end-to-end p99 ballpark (queue + exec <= total up to
    // bucket-quantization slack).
    EXPECT_GT(kinds[k].p99_s, 0.0);
    EXPECT_GE(kinds[k].queue_p99_s, 0.0);
    EXPECT_GT(kinds[k].exec_p99_s, 0.0);
    EXPECT_LE(kinds[k].queue_p50_s + kinds[k].exec_p50_s,
              kinds[k].p99_s * 2.5 + 1e-4);
  }
  EXPECT_EQ(total, 200u);
  // The per-kind histograms outlive the engine via detach-merge: the
  // registry snapshot still carries them (what -metrics-json exports at
  // exit).
  const auto snap = gbbs::obs::registry::global().read();
  std::uint64_t snap_total = 0;
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("serve.query.latency.", 0) == 0) snap_total += h.count;
  }
  EXPECT_GE(snap_total, 200u);
}

}  // namespace
