// Tests for the observability layer: worker-sharded counters and
// histograms (concurrent increment/snapshot correctness — runs in the
// TSan CI job), histogram quantiles against the exact obs::percentile
// reference, trace-span nesting, the seqlock-consistent event-counter
// snapshot vs a racing reset (the pre-obs torn-read bug), the registry's
// attach/detach-merge lifecycle, both render formats, and the live
// metrics endpoint end-to-end over a real socket.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "dynamic/update_batch.h"
#include "obs/exemplar.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/metrics_server.h"
#include "obs/registry.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "parlib/counters.h"
#include "parlib/scheduler.h"
#include "parlib/trace_hooks.h"
#include "serve/query.h"
#include "serve/query_engine.h"
#include "serve/snapshot_manager.h"

namespace {

using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::obs::histogram;

// Multi-worker scheduler even on 1-core CI hosts (same pattern as
// test_scheduler.cc) so sharded cells actually spread across slots. A
// small flight-recorder ring (set before the recorder's lazy init) makes
// the wraparound test cheap and deterministic.
struct force_workers {
  force_workers() {
    parlib::scheduler::set_num_workers(4);
    ::setenv("GBBS_TRACE_EVENTS", "512", 1);
  }
};
const force_workers kForceWorkers;

// ---- sharded counter -------------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsSumExact) {
  gbbs::obs::counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // Unregistered threads share the overflow slot; registered ones get
      // their own — both must count exactly.
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  // Concurrent reads must be safe (values racy, never torn/crashing).
  for (int r = 0; r < 100; ++r) {
    EXPECT_LE(c.value(), kThreads * kPerThread);
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsCounter, RegisteredWorkersUseOwnSlots) {
  gbbs::obs::counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      parlib::worker_guard wg;
      for (int i = 0; i < 1000; ++i) c.add(2);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 3u * 1000u * 2u);
}

// ---- histogram -------------------------------------------------------------

TEST(ObsHistogram, BucketIndexLayout) {
  // Exact unit buckets below 8 ns.
  for (std::uint64_t ns = 0; ns < 8; ++ns) {
    EXPECT_EQ(histogram::bucket_index(ns), ns);
  }
  // Monotone non-decreasing, and every index within range.
  std::size_t prev = 0;
  for (std::uint64_t ns = 0; ns < (1u << 20); ns += 97) {
    const std::size_t idx = histogram::bucket_index(ns);
    EXPECT_GE(idx, prev);
    EXPECT_LT(idx, histogram::kBuckets);
    prev = idx;
  }
  EXPECT_LT(histogram::bucket_index(~std::uint64_t{0}), histogram::kBuckets);
}

TEST(ObsHistogram, QuantilesMatchExactPercentileReference) {
  histogram h;
  std::vector<double> samples_s;
  // Deterministic values spanning ~6 octaves (1us .. 64us-ish) with a
  // skewed tail, the shape of a real latency distribution.
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 20000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t ns = 1000 + x % 64000;
    h.record_ns(ns);
    samples_s.push_back(static_cast<double>(ns) / 1e9);
  }
  std::sort(samples_s.begin(), samples_s.end());
  const auto s = h.read();
  EXPECT_EQ(s.count, samples_s.size());
  // max is exact; sum is exact.
  EXPECT_DOUBLE_EQ(s.max_s, samples_s.back());
  double sum = 0;
  for (double v : samples_s) sum += v;
  EXPECT_NEAR(s.sum_s, sum, 1e-12);
  // Quantiles within ~6% relative of the exact interpolated reference
  // (bucket width is <= 12.5%; the estimate interpolates inside the
  // bucket, so half-width is the honest bound — allow 10% for slack).
  const double tol = 0.10;
  EXPECT_NEAR(s.p50_s, gbbs::obs::percentile(samples_s, 0.50),
              tol * gbbs::obs::percentile(samples_s, 0.50));
  EXPECT_NEAR(s.p90_s, gbbs::obs::percentile(samples_s, 0.90),
              tol * gbbs::obs::percentile(samples_s, 0.90));
  EXPECT_NEAR(s.p99_s, gbbs::obs::percentile(samples_s, 0.99),
              tol * gbbs::obs::percentile(samples_s, 0.99));
}

TEST(ObsHistogram, ConcurrentRecordAndSnapshotStress) {
  histogram h;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 30000;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record_ns(static_cast<std::uint64_t>(t) * 1000 + i % 512);
      }
    });
  }
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto s = h.read();
      EXPECT_LE(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
    }
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsHistogram, MergeFromFoldsContents) {
  histogram a, b;
  a.record_ns(1000);
  a.record_ns(2000);
  b.record_ns(4000);
  a.merge_from(b);
  const auto s = a.read();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.max_s, 4000 / 1e9);
  EXPECT_NEAR(s.sum_s, 7000 / 1e9, 1e-12);
}

// ---- event counters: snapshot vs reset (the torn-read fix) -----------------

TEST(ObsEventCounters, SnapshotNeverTornAcrossReset) {
  auto& ec = parlib::event_counters::global();
  ec.reset();
  constexpr std::uint64_t kV = 424242;
  auto set_all = [&] {
    ec.edgemap_slots_written.store(kV, std::memory_order_relaxed);
    ec.edgemap_edges_examined.store(kV, std::memory_order_relaxed);
    ec.fetch_add_ops.store(kV, std::memory_order_relaxed);
    ec.histogram_calls.store(kV, std::memory_order_relaxed);
    ec.merged_csr_materializations.store(kV, std::memory_order_relaxed);
    ec.sched_external_registrations.store(kV, std::memory_order_relaxed);
    ec.sched_unregistered_pardos.store(kV, std::memory_order_relaxed);
    ec.sched_reader_forks.store(kV, std::memory_order_relaxed);
    ec.sched_inline_fallbacks.store(kV, std::memory_order_relaxed);
  };
  auto uniform = [](const parlib::event_counters_snapshot& s,
                    std::uint64_t v) {
    return s.edgemap_slots_written == v && s.edgemap_edges_examined == v &&
           s.fetch_add_ops == v && s.histogram_calls == v &&
           s.merged_csr_materializations == v &&
           s.sched_external_registrations == v &&
           s.sched_unregistered_pardos == v && s.sched_reader_forks == v &&
           s.sched_inline_fallbacks == v;
  };
  // Repeat the race many times: fields at a known value, one thread
  // resets while others snapshot. Every snapshot must be entirely
  // pre-reset (all kV) or entirely post-reset (all 0) — a mix is the
  // torn read the seqlock exists to prevent.
  for (int round = 0; round < 200; ++round) {
    set_all();
    std::atomic<bool> go{false};
    std::thread resetter([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      ec.reset();
    });
    std::vector<parlib::event_counters_snapshot> seen(4);
    std::vector<std::thread> readers;
    for (auto& out : seen) {
      readers.emplace_back([&, p = &out] { *p = ec.snapshot(); });
    }
    go.store(true, std::memory_order_release);
    resetter.join();
    for (auto& t : readers) t.join();
    for (const auto& s : seen) {
      EXPECT_TRUE(uniform(s, kV) || uniform(s, 0))
          << "torn snapshot in round " << round;
    }
  }
  ec.reset();
}

// ---- trace spans -----------------------------------------------------------

TEST(ObsTrace, SpansNestAndRecord) {
  auto& reg = gbbs::obs::registry::global();
  histogram& outer = reg.get_histogram("span.test.outer");
  histogram& inner = reg.get_histogram("span.test.inner");
  const auto outer_before = outer.count();
  const auto inner_before = inner.count();
  EXPECT_EQ(gbbs::obs::trace_span::depth(), 0);
  {
    gbbs::obs::trace_span a(outer);
    EXPECT_EQ(gbbs::obs::trace_span::depth(), 1);
    {
      gbbs::obs::trace_span b(inner);
      EXPECT_EQ(gbbs::obs::trace_span::depth(), 2);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(gbbs::obs::trace_span::depth(), 1);
  }
  EXPECT_EQ(gbbs::obs::trace_span::depth(), 0);
  EXPECT_EQ(outer.count(), outer_before + 1);
  EXPECT_EQ(inner.count(), inner_before + 1);
  // Timing sanity: outer contains inner's 5ms sleep; both nonzero.
  const auto so = outer.read();
  const auto si = inner.read();
  EXPECT_GE(si.max_s, 0.004);
  EXPECT_GE(so.max_s, si.max_s * 0.5);
}

// ---- registry --------------------------------------------------------------

TEST(ObsRegistry, GetOrCreateReturnsStableReferences) {
  auto& reg = gbbs::obs::registry::global();
  auto& c1 = reg.get_counter("test.stable_counter");
  auto& c2 = reg.get_counter("test.stable_counter");
  EXPECT_EQ(&c1, &c2);
  auto& h1 = reg.get_histogram("test.stable_hist");
  auto& h2 = reg.get_histogram("test.stable_hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(ObsRegistry, AttachedHistogramSurvivesDetachViaMerge) {
  auto& reg = gbbs::obs::registry::global();
  const std::string name = "test.attach_merge";
  {
    histogram local;
    auto handle = reg.attach_histogram(name, &local);
    local.record_ns(10000);
    local.record_ns(20000);
    local.record_ns(30000);
    // While attached: visible in snapshots.
    const auto snap = reg.read();
    bool found = false;
    for (const auto& [n, h] : snap.histograms) {
      if (n == name) {
        found = true;
        EXPECT_EQ(h.count, 3u);
      }
    }
    EXPECT_TRUE(found);
  }  // handle detaches, then `local` dies
  // After the owner is gone the totals persist (merged into an
  // registry-owned histogram of the same name) — the property the
  // at-exit -metrics-json write depends on.
  const auto snap = reg.read();
  bool found = false;
  for (const auto& [n, h] : snap.histograms) {
    if (n == name) {
      found = true;
      EXPECT_EQ(h.count, 3u);
      EXPECT_DOUBLE_EQ(h.max_s, 30000 / 1e9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsRegistry, RuntimeBridgeExportsSchedulerState) {
  const auto snap = gbbs::obs::registry::global().read();
  auto counter_present = [&](const std::string& name) {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(counter_present("sched.steals"));
  EXPECT_TRUE(counter_present("sched.inline_fallbacks"));
  EXPECT_TRUE(counter_present("sched.reader_forks"));
  EXPECT_TRUE(counter_present("edgemap.slots_written"));
  bool workers_gauge = false;
  for (const auto& [n, v] : snap.gauges) {
    if (n == "sched.num_workers") {
      workers_gauge = true;
      EXPECT_EQ(v, 4);
    }
  }
  EXPECT_TRUE(workers_gauge);
}

TEST(ObsRegistry, RendersJsonAndPrometheus) {
  auto& reg = gbbs::obs::registry::global();
  reg.get_counter("test.render_counter").add(7);
  reg.get_histogram("test.render_hist").record_ns(5000);
  const auto snap = reg.read();
  const std::string json = gbbs::obs::registry::to_json(snap);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.render_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.render_hist\""), std::string::npos);
  // Balanced braces — cheap structural sanity (CI validates with a real
  // JSON parser on the exported file).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  const std::string prom = gbbs::obs::registry::to_prometheus(snap);
  EXPECT_NE(prom.find("# TYPE gbbs_test_render_counter counter"),
            std::string::npos);
  EXPECT_NE(prom.find("gbbs_test_render_hist{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("gbbs_sched_num_workers"), std::string::npos);
}

TEST(ObsRegistry, WriteJsonIsAtomicAndParsable) {
  const std::string path = "test_obs_metrics.json";
  ASSERT_TRUE(gbbs::obs::registry::global().write_json(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string doc;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) doc.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
}

// ---- live endpoint ---------------------------------------------------------

TEST(ObsMetricsServer, ServesPrometheusTextOverTcp) {
  gbbs::obs::metrics_server srv(/*port=*/0);  // kernel-assigned port
  ASSERT_TRUE(srv.ok());
  ASSERT_NE(srv.port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(srv.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, req, sizeof(req) - 1, 0),
            static_cast<ssize_t>(sizeof(req) - 1));
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(resp.find("gbbs_sched_num_workers"), std::string::npos);
  EXPECT_NE(resp.find("# TYPE"), std::string::npos);
}

// Hostile clients must not wedge or kill the accept thread: connect-and-
// close without sending, a partial request followed by close, and a
// client that never reads the response (SIGPIPE/EPIPE path) — a normal
// request afterwards is still served.
TEST(ObsMetricsServer, SurvivesAbusiveClients) {
  gbbs::obs::metrics_server srv(/*port=*/0);
  ASSERT_TRUE(srv.ok());
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(srv.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  auto dial = [&] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  };

  // 1) Connect and immediately close without sending anything.
  ::close(dial());
  // 2) Partial request line, then close mid-request.
  {
    const int fd = dial();
    ::send(fd, "GET /met", 8, MSG_NOSIGNAL);
    ::close(fd);
  }
  // 3) Full request but the client disappears without reading the
  //    response: the server's sends hit a dead peer (EPIPE, not SIGPIPE).
  {
    const int fd = dial();
    const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
    ::send(fd, req, sizeof(req) - 1, MSG_NOSIGNAL);
    ::close(fd);
  }

  // The server is still alive and serves a well-formed response.
  const int fd = dial();
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, req, sizeof(req) - 1, 0),
            static_cast<ssize_t>(sizeof(req) - 1));
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("charset=utf-8"), std::string::npos);
}

// ---- pipeline integration --------------------------------------------------

TEST(ObsPipeline, IngestRecordsStageSpans) {
  auto& reg = gbbs::obs::registry::global();
  const auto normalize_before =
      reg.get_histogram("span.ingest.normalize").count();
  const auto apply_before = reg.get_histogram("span.ingest.apply").count();
  const auto cc_before =
      reg.get_histogram("span.ingest.connectivity").count();
  const auto refresh_before =
      reg.get_histogram("span.ingest.overlay_refresh").count();
  const auto publish_before =
      reg.get_histogram("span.ingest.publish").count();

  const vertex_id n = 64;
  gbbs::serve::snapshot_manager<empty_weight> mgr(n);
  for (int b = 0; b < 3; ++b) {
    std::vector<gbbs::dynamic::update<empty_weight>> raw;
    for (vertex_id u = 0; u < n - 1; ++u) {
      raw.push_back({u, static_cast<vertex_id>(u + 1 + b) % n, {},
                     gbbs::dynamic::update_op::insert});
    }
    mgr.ingest(std::move(raw));
    mgr.publish();
  }
  EXPECT_GE(reg.get_histogram("span.ingest.normalize").count(),
            normalize_before + 3);
  EXPECT_GE(reg.get_histogram("span.ingest.apply").count(),
            apply_before + 3);
  EXPECT_GE(reg.get_histogram("span.ingest.connectivity").count(),
            cc_before + 3);
  EXPECT_GE(reg.get_histogram("span.ingest.overlay_refresh").count(),
            refresh_before + 3);
  EXPECT_GE(reg.get_histogram("span.ingest.publish").count(),
            publish_before + 3);
}

TEST(ObsPipeline, QueryEngineReportsQueueWaitBreakdown) {
  const vertex_id n = 256;
  gbbs::serve::snapshot_manager<empty_weight> mgr(n);
  std::vector<gbbs::dynamic::update<empty_weight>> raw;
  for (vertex_id u = 0; u < n - 1; ++u) {
    raw.push_back({u, u + 1, {}, gbbs::dynamic::update_op::insert});
  }
  mgr.ingest(std::move(raw));
  mgr.publish();

  std::array<gbbs::serve::query_engine<empty_weight>::kind_stats,
             gbbs::serve::kNumQueryKinds>
      kinds{};
  {
    gbbs::serve::query_engine<empty_weight> engine(mgr.store(),
                                                   &mgr.overlay(), 2);
    std::vector<std::future<gbbs::serve::query_result>> futures;
    parlib::random rng(7);
    for (std::size_t qi = 0; qi < 200; ++qi) {
      futures.push_back(
          engine.submit(gbbs::serve::make_mixed_query(rng, qi, n)));
    }
    for (auto& f : futures) f.get();
    engine.drain();
    kinds = engine.latency_by_kind();
  }
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < gbbs::serve::kNumQueryKinds; ++k) {
    total += kinds[k].count;
    if (kinds[k].count == 0) continue;
    // Stage percentiles are populated and internally sane: each stage is
    // bounded by the end-to-end p99 ballpark (queue + exec <= total up to
    // bucket-quantization slack).
    EXPECT_GT(kinds[k].p99_s, 0.0);
    EXPECT_GE(kinds[k].queue_p99_s, 0.0);
    EXPECT_GT(kinds[k].exec_p99_s, 0.0);
    EXPECT_LE(kinds[k].queue_p50_s + kinds[k].exec_p50_s,
              kinds[k].p99_s * 2.5 + 1e-4);
  }
  EXPECT_EQ(total, 200u);
  // The per-kind histograms outlive the engine via detach-merge: the
  // registry snapshot still carries them (what -metrics-json exports at
  // exit).
  const auto snap = gbbs::obs::registry::global().read();
  std::uint64_t snap_total = 0;
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("serve.query.latency.", 0) == 0) snap_total += h.count;
  }
  EXPECT_GE(snap_total, 200u);
}

// ---- flight recorder -------------------------------------------------------

using gbbs::obs::event_type;
using gbbs::obs::flight_recorder;
using gbbs::obs::recorded_event;

// Ring wraparound: with the 512-entry test rings, emitting 3x capacity
// keeps only the newest events, and the dropped counter accounts for the
// overwritten ones exactly — wraparound is never silent.
TEST(FlightRecorder, WraparoundKeepsNewestAndCountsDropped) {
  auto& fr = flight_recorder::global();
  ASSERT_EQ(fr.capacity(), 512u);
  const std::uint64_t tid = fr.next_trace_id();
  parlib::trace::trace_id_scope scope(tid);
  const std::uint64_t dropped_before = fr.events_dropped();
  const std::uint64_t recorded_before = fr.events_recorded();
  const std::size_t kEmits = 3 * 512;
  for (std::size_t i = 0; i < kEmits; ++i) {
    fr.emit(event_type::instant, 0, /*arg_b=*/i);
  }
  EXPECT_EQ(fr.events_recorded() - recorded_before, kEmits);
  // This thread's ring had already absorbed events from earlier tests, so
  // the drop delta is at least the overflow beyond one full ring.
  EXPECT_GE(fr.events_dropped() - dropped_before, kEmits - 512);

  const auto timeline = fr.snapshot_trace(tid);
  ASSERT_FALSE(timeline.empty());
  EXPECT_LE(timeline.size(), 512u);
  bool saw_last = false, saw_first = false;
  for (const auto& ev : timeline) {
    if (ev.arg_b == kEmits - 1) saw_last = true;
    if (ev.arg_b == 0) saw_first = true;
  }
  EXPECT_TRUE(saw_last);   // newest survives
  EXPECT_FALSE(saw_first); // oldest was overwritten
}

// Concurrent writers + snapshots: every decoded event is internally
// consistent (type in range, trace id one of the writers', payload
// matching the id), no matter how the snapshot races the wraparound.
// All event fields are relaxed atomics under a per-entry seqlock — this
// is the test the TSan CI job leans on.
TEST(FlightRecorder, ConcurrentWritersAndSnapshotsStayConsistent) {
  auto& fr = flight_recorder::global();
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  std::array<std::uint64_t, kWriters> ids{};
  for (int w = 0; w < kWriters; ++w) ids[w] = fr.next_trace_id();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Registered: each writer gets its own ring (single-writer path);
      // the last writer stays unregistered to also cover the shared
      // overflow ring's multi-writer fetch_add claim.
      std::unique_ptr<parlib::worker_guard> guard;
      if (w != kWriters - 1) {
        guard = std::make_unique<parlib::worker_guard>();
      }
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        fr.emit_with_id(event_type::instant, ids[w],
                        static_cast<std::uint32_t>(w), ids[w] ^ i);
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto& ev : fr.snapshot()) {
        ASSERT_LE(static_cast<std::uint32_t>(ev.type),
                  static_cast<std::uint32_t>(event_type::sched_inline));
        for (int w = 0; w < kWriters; ++w) {
          if (ev.trace_id != ids[w]) continue;
          // A decoded entry is never a torn mix of two writes: the
          // payload must be self-consistent with the trace id.
          ASSERT_EQ(ev.arg_a, static_cast<std::uint32_t>(w));
          ASSERT_LT(ev.arg_b ^ ev.trace_id, kPerWriter);
        }
      }
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
}

// Trace-id propagation across a real steal: a registered external thread
// forks under a trace id; when a native worker steals the branch, the
// events emitted *inside the stolen task* — and the scheduler's own
// run_begin — still carry the originating request's id.
TEST(FlightRecorder, StolenTaskCarriesOriginatingTraceId) {
  auto& fr = flight_recorder::global();
  ASSERT_GE(parlib::scheduler::instance().num_workers(), 2u);
  const std::uint32_t marker = fr.intern("test.stolen_marker");
  bool steal_observed = false;
  for (int attempt = 0; attempt < 300 && !steal_observed; ++attempt) {
    const std::uint64_t tid = fr.next_trace_id();
    std::thread th([&] {
      parlib::worker_guard guard;
      ASSERT_TRUE(guard.registered());
      parlib::trace::trace_id_scope scope(tid);
      std::atomic<bool> right_ran{false};
      parlib::par_do(
          [&] {
            // Give a thief time to grab the right branch; bounded so an
            // un-stolen attempt finishes quickly and retries.
            for (std::size_t spin = 0;
                 spin < (std::size_t{1} << 22) &&
                 !right_ran.load(std::memory_order_acquire);
                 ++spin) {
            }
          },
          [&] {
            // Runs either stolen (on a native worker, trace id adopted
            // from job::trace_id) or locally (scope still active) — the
            // emitted event must carry `tid` both ways.
            fr.emit(event_type::instant, marker, 0);
            right_ran.store(true, std::memory_order_release);
          });
    });
    th.join();
    const auto timeline = fr.snapshot_trace(tid);
    bool marker_ok = false;
    std::uint32_t marker_slot = 0, steal_slot = 1;
    bool stolen = false;
    for (const auto& ev : timeline) {
      if (ev.type == event_type::instant && ev.arg_a == marker) {
        marker_ok = true;
        marker_slot = ev.slot;
      }
      if (ev.type == event_type::sched_run_begin) {
        stolen = true;  // only thieves emit run_begin
        steal_slot = ev.slot;
      }
    }
    ASSERT_TRUE(marker_ok) << "stolen-or-local marker lost its trace id";
    if (stolen) {
      // The steal happened on a different participant than the forker,
      // yet both the scheduler event and the in-task marker carry tid
      // (that is what snapshot_trace filtered on).
      EXPECT_EQ(marker_slot, steal_slot);
      steal_observed = true;
    }
  }
  EXPECT_TRUE(steal_observed)
      << "no steal in 300 attempts on a 4-worker scheduler";
}

// ---- exemplar store --------------------------------------------------------

TEST(ExemplarStore, ThresholdAndBoundedTopK) {
  auto& store = gbbs::obs::exemplar_store::global();
  auto& fr = flight_recorder::global();
  store.clear();
  store.set_threshold_s(0.010);

  // Below threshold: never captured.
  EXPECT_FALSE(store.maybe_capture(fr.next_trace_id(), "fast", 0.005));
  EXPECT_EQ(store.captured_count(), 0u);

  // Above threshold: captured, slowest-first, bounded at kMaxExemplars.
  const std::size_t kOver = gbbs::obs::exemplar_store::kMaxExemplars + 5;
  for (std::size_t i = 0; i < kOver; ++i) {
    const std::uint64_t tid = fr.next_trace_id();
    parlib::trace::trace_id_scope scope(tid);
    fr.emit(event_type::instant, fr.intern("test.exemplar_event"), i);
    EXPECT_TRUE(
        store.maybe_capture(tid, "slow", 0.010 + 0.001 * (double)(i + 1)));
  }
  const auto exs = store.snapshot();
  ASSERT_EQ(exs.size(), gbbs::obs::exemplar_store::kMaxExemplars);
  // Slowest retained and sorted descending; each kept its own timeline.
  for (std::size_t i = 0; i + 1 < exs.size(); ++i) {
    EXPECT_GE(exs[i].latency_s, exs[i + 1].latency_s);
  }
  EXPECT_NEAR(exs.front().latency_s, 0.010 + 0.001 * kOver, 1e-9);
  for (const auto& ex : exs) {
    EXPECT_EQ(ex.label, "slow");
    ASSERT_EQ(ex.timeline.size(), 1u);
    EXPECT_EQ(ex.timeline[0].trace_id, ex.trace_id);
  }
  // A new capture slower than everything displaces the fastest retained;
  // one not beating the floor is rejected.
  EXPECT_FALSE(store.maybe_capture(fr.next_trace_id(), "meh", 0.0101));
  EXPECT_TRUE(store.maybe_capture(fr.next_trace_id(), "worst", 1.0));
  EXPECT_EQ(store.snapshot().front().label, "worst");
  EXPECT_EQ(store.snapshot().size(),
            gbbs::obs::exemplar_store::kMaxExemplars);

  // Disabled store captures nothing.
  store.set_threshold_s(-1);
  EXPECT_FALSE(store.maybe_capture(fr.next_trace_id(), "late", 9.0));
  store.clear();
}

// End-to-end: a serving session with a zero threshold tail-samples real
// queries, and each exemplar's timeline is the query's own events (the
// per-kind execute span from the reader thread).
TEST(ExemplarStore, CapturesRealQueryTimelines) {
  auto& store = gbbs::obs::exemplar_store::global();
  store.clear();
  store.set_threshold_s(0.0);  // every completed query qualifies
  {
    gbbs::serve::snapshot_manager<empty_weight> mgr(64);
    std::vector<gbbs::dynamic::update<empty_weight>> ups;
    for (vertex_id v = 0; v + 1 < 64; ++v) {
      ups.push_back({v, v + 1, {}, gbbs::dynamic::update_op::insert});
    }
    mgr.ingest(std::move(ups));
    mgr.publish();
    gbbs::serve::query_engine<empty_weight> engine(mgr.store(),
                                                   &mgr.overlay(), 2);
    std::vector<std::future<gbbs::serve::query_result>> futs;
    for (int i = 0; i < 24; ++i) {
      gbbs::serve::query q;
      q.kind = gbbs::serve::query_kind::bfs_distance;
      q.u = static_cast<vertex_id>(i % 64);
      q.v = static_cast<vertex_id>((i * 7) % 64);
      futs.push_back(engine.submit(q));
    }
    for (auto& f : futs) f.get();
    engine.drain();
  }
  EXPECT_GT(store.captured_count(), 0u);
  const auto exs = store.snapshot();
  ASSERT_FALSE(exs.empty());
  auto& fr = flight_recorder::global();
  for (const auto& ex : exs) {
    EXPECT_EQ(ex.label, "bfs_distance");
    ASSERT_FALSE(ex.timeline.empty());
    bool saw_query_span = false;
    for (const auto& ev : ex.timeline) {
      EXPECT_EQ(ev.trace_id, ex.trace_id);
      if (ev.type == event_type::span_begin &&
          fr.intern_name(ev.arg_a) == "serve.query.bfs_distance") {
        saw_query_span = true;
      }
    }
    EXPECT_TRUE(saw_query_span);
  }
  store.set_threshold_s(-1);
  store.clear();
}

// Ingest batches get their own trace ids: the batch's pipeline spans all
// land on the id snapshot_manager assigned.
TEST(FlightRecorder, IngestBatchTimelineIsAttributed) {
  gbbs::serve::snapshot_manager<empty_weight> mgr(32);
  std::vector<gbbs::dynamic::update<empty_weight>> ups;
  for (vertex_id v = 0; v + 1 < 32; ++v) {
    ups.push_back({v, v + 1, {}, gbbs::dynamic::update_op::insert});
  }
  mgr.ingest(std::move(ups));
  const std::uint64_t tid = mgr.last_ingest_trace_id();
  ASSERT_NE(tid, 0u);
  auto& fr = flight_recorder::global();
  const auto timeline = fr.snapshot_trace(tid);
  std::vector<std::string> begun;
  for (const auto& ev : timeline) {
    if (ev.type == event_type::span_begin) {
      begun.push_back(fr.intern_name(ev.arg_a));
    }
  }
  for (const char* want :
       {"ingest.normalize", "ingest.apply", "ingest.connectivity",
        "ingest.overlay_refresh"}) {
    EXPECT_NE(std::find(begun.begin(), begun.end(), want), begun.end())
        << "missing stage " << want << " in batch timeline";
  }
  // publish() reuses the batch's id.
  mgr.publish();
  bool publish_span = false;
  for (const auto& ev : fr.snapshot_trace(tid)) {
    if (ev.type == event_type::span_begin &&
        fr.intern_name(ev.arg_a) == "ingest.publish") {
      publish_span = true;
    }
  }
  EXPECT_TRUE(publish_span);
}

// ---- Perfetto export -------------------------------------------------------

// Minimal JSON validator (objects/arrays/strings/numbers/literals) — the
// well-formedness half of what CI's `python3 -m json.tool` checks.
bool json_skip_value(const char*& p, const char* end);

void json_skip_ws(const char*& p, const char* end) {
  while (p < end && (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r')) {
    ++p;
  }
}

bool json_skip_string(const char*& p, const char* end) {
  if (p >= end || *p != '"') return false;
  ++p;
  while (p < end && *p != '"') {
    if (*p == '\\') ++p;
    ++p;
  }
  if (p >= end) return false;
  ++p;  // closing quote
  return true;
}

bool json_skip_members(const char*& p, const char* end, char close,
                       bool object) {
  json_skip_ws(p, end);
  if (p < end && *p == close) {
    ++p;
    return true;
  }
  for (;;) {
    json_skip_ws(p, end);
    if (object) {
      if (!json_skip_string(p, end)) return false;
      json_skip_ws(p, end);
      if (p >= end || *p != ':') return false;
      ++p;
    }
    if (!json_skip_value(p, end)) return false;
    json_skip_ws(p, end);
    if (p >= end) return false;
    if (*p == ',') {
      ++p;
      continue;
    }
    if (*p == close) {
      ++p;
      return true;
    }
    return false;
  }
}

bool json_skip_value(const char*& p, const char* end) {
  json_skip_ws(p, end);
  if (p >= end) return false;
  switch (*p) {
    case '{':
      ++p;
      return json_skip_members(p, end, '}', /*object=*/true);
    case '[':
      ++p;
      return json_skip_members(p, end, ']', /*object=*/false);
    case '"':
      return json_skip_string(p, end);
    default: {
      static const char* lits[] = {"true", "false", "null"};
      for (const char* lit : lits) {
        const std::size_t n = std::strlen(lit);
        if (static_cast<std::size_t>(end - p) >= n &&
            std::strncmp(p, lit, n) == 0) {
          p += n;
          return true;
        }
      }
      const char* q = p;
      if (q < end && (*q == '-' || *q == '+')) ++q;
      bool digits = false;
      while (q < end && ((*q >= '0' && *q <= '9') || *q == '.' ||
                         *q == 'e' || *q == 'E' || *q == '-' || *q == '+')) {
        digits = true;
        ++q;
      }
      if (!digits) return false;
      p = q;
      return true;
    }
  }
}

bool is_well_formed_json(const std::string& doc) {
  const char* p = doc.data();
  const char* end = p + doc.size();
  if (!json_skip_value(p, end)) return false;
  json_skip_ws(p, end);
  return p == end;
}

TEST(TraceExport, ChromeTraceIsWellFormedAndCarriesTaxonomy) {
  // Generate real activity: an ingest (stage spans + parallel forks) and
  // queries (flow hand-offs + per-kind spans).
  gbbs::serve::snapshot_manager<empty_weight> mgr(128);
  std::vector<gbbs::dynamic::update<empty_weight>> ups;
  for (vertex_id v = 0; v + 1 < 128; ++v) {
    ups.push_back({v, v + 1, {}, gbbs::dynamic::update_op::insert});
  }
  mgr.ingest(std::move(ups));
  mgr.publish();
  {
    gbbs::serve::query_engine<empty_weight> engine(mgr.store(),
                                                   &mgr.overlay(), 2);
    std::vector<std::future<gbbs::serve::query_result>> futs;
    parlib::random rng(7);
    for (std::size_t i = 0; i < 32; ++i) {
      futs.push_back(engine.submit(
          gbbs::serve::make_mixed_query(rng, i, 128, /*heavy=*/false)));
    }
    for (auto& f : futs) f.get();
  }
  const std::string doc = gbbs::obs::chrome_trace_json();
  ASSERT_TRUE(is_well_formed_json(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  // Duration + metadata + flow phases present, and the stable stage /
  // scheduler taxonomy made it into the document.
  for (const char* want :
       {"\"ph\": \"M\"", "\"ph\": \"B\"", "\"ph\": \"E\"", "\"ph\": \"s\"",
        "\"ph\": \"f\"", "ingest.normalize", "serve.query.",
        "\"trace_id\":"}) {
    EXPECT_NE(doc.find(want), std::string::npos) << "missing " << want;
  }
  // Fork events happen on a 4-worker scheduler ingesting 128 vertices;
  // steal instants depend on timing, so only forks are required.
  EXPECT_NE(doc.find("sched_fork"), std::string::npos);

  // The registry JSON with an exemplar section stays parseable too.
  auto& store = gbbs::obs::exemplar_store::global();
  store.clear();
  store.set_threshold_s(0.5);
  const std::string metrics =
      gbbs::obs::registry::to_json(gbbs::obs::registry::global().read());
  EXPECT_TRUE(is_well_formed_json(metrics)) << metrics.substr(0, 400);
  EXPECT_NE(metrics.find("slow_query_exemplars"), std::string::npos);
  EXPECT_NE(metrics.find("trace.events_recorded"), std::string::npos);
  store.set_threshold_s(-1);
}

}  // namespace
