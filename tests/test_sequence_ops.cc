// Tests for scan, reduce, filter, pack, pack_index, flatten, map_maybe —
// including parameterized sweeps over sizes that cross block boundaries.
#include <cstdint>
#include <numeric>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "parlib/random.h"
#include "parlib/sequence_ops.h"

namespace {

using parlib::sequence;

class SequenceOpsSizes : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, SequenceOpsSizes,
                         ::testing::Values(0, 1, 2, 3, 100, 2047, 2048, 2049,
                                           4096, 10000, 100000, 262144));

TEST_P(SequenceOpsSizes, TabulateMatchesFormula) {
  const std::size_t n = GetParam();
  auto s = parlib::tabulate<std::uint64_t>(n, [](std::size_t i) {
    return 3 * i + 1;
  });
  ASSERT_EQ(s.size(), n);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(s[i], 3 * i + 1);
}

TEST_P(SequenceOpsSizes, ReduceAddMatchesSequential) {
  const std::size_t n = GetParam();
  auto s = parlib::tabulate<std::uint64_t>(
      n, [](std::size_t i) { return parlib::hash64(i) % 1000; });
  std::uint64_t expected = 0;
  for (auto v : s) expected += v;
  EXPECT_EQ(parlib::reduce_add(s), expected);
}

TEST_P(SequenceOpsSizes, ReduceMaxMatchesSequential) {
  const std::size_t n = GetParam();
  if (n == 0) return;
  auto s = parlib::tabulate<std::int64_t>(n, [](std::size_t i) {
    return static_cast<std::int64_t>(parlib::hash64(i) % 1000000) - 500000;
  });
  std::int64_t expected = s[0];
  for (auto v : s) expected = std::max(expected, v);
  EXPECT_EQ(parlib::reduce(s, parlib::max_monoid<std::int64_t>()), expected);
}

TEST_P(SequenceOpsSizes, ExclusiveScanMatchesSequential) {
  const std::size_t n = GetParam();
  auto s = parlib::tabulate<std::uint64_t>(
      n, [](std::size_t i) { return parlib::hash64(i) % 100; });
  auto orig = s;
  const std::uint64_t total = parlib::scan_inplace(s);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(s[i], acc) << "at " << i;
    acc += orig[i];
  }
  EXPECT_EQ(total, acc);
}

TEST_P(SequenceOpsSizes, FilterKeepsExactlyMatchingInOrder) {
  const std::size_t n = GetParam();
  auto s = parlib::tabulate<std::uint32_t>(
      n, [](std::size_t i) { return parlib::hash32(static_cast<std::uint32_t>(i)); });
  auto pred = [](std::uint32_t v) { return v % 3 == 0; };
  auto got = parlib::filter(s, pred);
  std::vector<std::uint32_t> expected;
  for (auto v : s)
    if (pred(v)) expected.push_back(v);
  EXPECT_EQ(got, expected);
}

TEST_P(SequenceOpsSizes, PackAgreesWithFilter) {
  const std::size_t n = GetParam();
  auto s = parlib::iota<std::uint32_t>(n);
  auto flags = parlib::tabulate<std::uint8_t>(n, [](std::size_t i) {
    return static_cast<std::uint8_t>(parlib::hash64(i) & 1);
  });
  auto got = parlib::pack(s, flags);
  std::vector<std::uint32_t> expected;
  for (std::size_t i = 0; i < n; ++i)
    if (flags[i]) expected.push_back(s[i]);
  EXPECT_EQ(got, expected);
}

TEST_P(SequenceOpsSizes, PackIndexReturnsSortedPositions) {
  const std::size_t n = GetParam();
  auto flags = parlib::tabulate<std::uint8_t>(n, [](std::size_t i) {
    return static_cast<std::uint8_t>(parlib::hash64(i * 31) % 4 == 0);
  });
  auto got = parlib::pack_index<std::uint32_t>(flags);
  std::vector<std::uint32_t> expected;
  for (std::size_t i = 0; i < n; ++i)
    if (flags[i]) expected.push_back(static_cast<std::uint32_t>(i));
  EXPECT_EQ(got, expected);
}

TEST_P(SequenceOpsSizes, CountIfMatchesFilterSize) {
  const std::size_t n = GetParam();
  auto s = parlib::tabulate<std::uint64_t>(
      n, [](std::size_t i) { return parlib::hash64(i); });
  auto pred = [](std::uint64_t v) { return v % 7 < 2; };
  EXPECT_EQ(parlib::count_if(s, pred), parlib::filter(s, pred).size());
}

TEST(SequenceOps, MapAppliesFunction) {
  auto s = parlib::iota<std::uint32_t>(1000);
  auto doubled = parlib::map(s, [](std::uint32_t v) { return v * 2; });
  for (std::size_t i = 0; i < s.size(); ++i) ASSERT_EQ(doubled[i], 2 * i);
}

TEST(SequenceOps, MapMaybeDropsEmpties) {
  auto s = parlib::iota<std::uint32_t>(10000);
  auto got = parlib::map_maybe(s, [](std::uint32_t v) -> std::optional<std::uint32_t> {
    if (v % 5 == 0) return v * 10;
    return std::nullopt;
  });
  ASSERT_EQ(got.size(), 2000u);
  for (std::size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], i * 50);
}

TEST(SequenceOps, FlattenConcatenatesInOrder) {
  sequence<sequence<int>> seqs = {{1, 2}, {}, {3}, {4, 5, 6}, {}};
  auto flat = parlib::flatten(seqs);
  EXPECT_EQ(flat, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(SequenceOps, FlattenManySmall) {
  const std::size_t k = 5000;
  sequence<sequence<std::uint32_t>> seqs(k);
  std::size_t total = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t len = parlib::hash64(i) % 4;
    for (std::size_t j = 0; j < len; ++j)
      seqs[i].push_back(static_cast<std::uint32_t>(total + j));
    total += len;
  }
  auto flat = parlib::flatten(seqs);
  ASSERT_EQ(flat.size(), total);
  for (std::size_t i = 0; i < total; ++i) ASSERT_EQ(flat[i], i);
}

TEST(SequenceOps, ScanWithMaxMonoid) {
  sequence<int> s = {3, 1, 4, 1, 5, 9, 2, 6};
  auto [out, total] = parlib::scan(s, parlib::max_monoid<int>());
  // Exclusive max-prefix.
  std::vector<int> expected = {std::numeric_limits<int>::lowest(), 3, 3, 4,
                               4, 5, 9, 9};
  EXPECT_EQ(out, expected);
  EXPECT_EQ(total, 9);
}

TEST(SequenceOps, ScanIntoAliasedLargeInput) {
  const std::size_t n = 1 << 18;
  auto s = parlib::tabulate<std::uint64_t>(n, [](std::size_t) { return 1; });
  const auto total = parlib::scan_inplace(s);
  EXPECT_EQ(total, n);
  EXPECT_EQ(s[n - 1], n - 1);
  EXPECT_EQ(s[0], 0u);
}

}  // namespace
