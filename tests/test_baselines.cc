// The Section 6 comparator baselines must agree with the primary
// implementations (their role in the benches is performance comparison).
#include <string>
#include <unordered_map>

#include <gtest/gtest.h>

#include "algorithms/baselines.h"
#include "algorithms/connectivity.h"
#include "algorithms/msf.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

void expect_same_partition(const std::vector<vertex_id>& a,
                           const std::vector<vertex_id>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::unordered_map<vertex_id, vertex_id> a2b, b2a;
  for (std::size_t v = 0; v < a.size(); ++v) {
    auto [ia, u1] = a2b.try_emplace(a[v], b[v]);
    ASSERT_EQ(ia->second, b[v]) << v;
    auto [ib, u2] = b2a.try_emplace(b[v], a[v]);
    ASSERT_EQ(ib->second, a[v]) << v;
  }
}

class BaselineSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, BaselineSuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(BaselineSuite, UnionFindConnectivityMatchesLddConnectivity) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  expect_same_partition(gbbs::connectivity_union_find(g),
                        gbbs::connectivity(g));
}

TEST_P(BaselineSuite, KruskalMatchesFilteredBoruvkaWeight) {
  auto g = gbbs::testing::make_symmetric_weighted(GetParam());
  auto kruskal = gbbs::msf_kruskal(g);
  auto boruvka = gbbs::msf(g);
  EXPECT_EQ(kruskal.total_weight, boruvka.total_weight);
  EXPECT_EQ(kruskal.forest.size(), boruvka.forest.size());
}

}  // namespace
