// Tests for the bucket-keyed result cache + standing queries
// (src/serve/result_cache.h, read_set.h, query_engine.h subscribe()):
//   * bucket_set / read_set_recorder semantics (all-flag, intersects,
//     merge, enumeration);
//   * the acceptance equality: under randomized mixed insert/erase
//     schedules, every query kind served with the cache on is
//     bit-identical to the same query with the cache off — first
//     evaluation (miss path) and repeat (hit path) alike;
//   * invalidation precision, counter-verified: a batch touching a cached
//     query's read-set provably evicts the entry, a bucket-disjoint batch
//     provably does not;
//   * standing queries: subscription delivery on intersecting batches
//     only, trigger coalescing, the bounded drop-oldest channel, and
//     channel close at engine stop;
//   * the sharded ingest path: pre-apply invalidation at the batch clock,
//     delta notification at the composite publish;
//   * a writer-vs-readers stress with the cache and a subscription live
//     (the TSan job runs this binary).
#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dynamic/stream.h"
#include "graph/generators.h"
#include "parlib/random.h"
#include "serve/query.h"
#include "serve/query_engine.h"
#include "serve/read_set.h"
#include "serve/result_cache.h"
#include "serve/sharded_ingest.h"
#include "serve/snapshot_manager.h"

namespace {

using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::serve::bucket_set;
using gbbs::serve::cache_bucket_of;
using gbbs::serve::query;
using gbbs::serve::query_engine;
using gbbs::serve::query_engine_options;
using gbbs::serve::query_kind;
using gbbs::serve::query_result;
using gbbs::serve::query_status;
using gbbs::serve::read_set_recorder;
using gbbs::serve::result_cache;
using gbbs::serve::snapshot_manager;

using uw_update = gbbs::dynamic::update<empty_weight>;

std::vector<uw_update> make_updates(
    const std::vector<std::pair<vertex_id, vertex_id>>& pairs,
    gbbs::dynamic::update_op op = gbbs::dynamic::update_op::insert) {
  std::vector<uw_update> ups;
  ups.reserve(pairs.size());
  for (const auto& [u, v] : pairs) ups.push_back({u, v, {}, op});
  return ups;
}

// A vertex (starting from `from`, wrapping mod n) whose cache bucket
// differs from every bucket in `avoid`.
vertex_id vertex_outside(const bucket_set& avoid, vertex_id from,
                         vertex_id n) {
  vertex_id w = from % n;
  while (avoid.test(cache_bucket_of(w))) w = (w + 1) % n;
  return w;
}

// ---- bucket_set / read_set_recorder ---------------------------------------

TEST(BucketSet, BasicsAndAllFlag) {
  bucket_set a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.count(), 0u);
  a.add_vertex(7);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.count(), 1u);
  EXPECT_TRUE(a.test(cache_bucket_of(7)));

  bucket_set all;
  all.set_all();
  EXPECT_TRUE(all.all());
  EXPECT_FALSE(all.empty());
  EXPECT_EQ(all.count(), gbbs::serve::kCacheBuckets);
  // The universe intersects anything non-empty, including itself.
  EXPECT_TRUE(all.intersects(a));
  EXPECT_TRUE(a.intersects(all));
  EXPECT_TRUE(all.intersects(all));
  bucket_set none;
  EXPECT_FALSE(all.intersects(none));
  EXPECT_FALSE(none.intersects(all));
}

TEST(BucketSet, IntersectsAndMerge) {
  bucket_set a, b;
  a.add(3);
  a.add(100);
  b.add(4);
  EXPECT_FALSE(a.intersects(b));
  b.add(100);
  EXPECT_TRUE(a.intersects(b));

  bucket_set m;
  m.merge(a);
  m.merge(b);
  EXPECT_EQ(m.count(), 3u);  // {3, 4, 100}
  std::vector<std::size_t> seen;
  m.for_each([&](std::size_t bk) { seen.push_back(bk); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{3, 4, 100}));
}

TEST(ReadSetRecorder, SnapshotMatchesRecords) {
  read_set_recorder rec;
  rec.record(1);
  rec.record(2);
  rec.record(1);  // idempotent
  const bucket_set s = rec.snapshot();
  EXPECT_TRUE(s.test(cache_bucket_of(1)));
  EXPECT_TRUE(s.test(cache_bucket_of(2)));
  EXPECT_FALSE(s.all());

  read_set_recorder rec_all;
  rec_all.record(5);
  rec_all.record_all();
  EXPECT_TRUE(rec_all.snapshot().all());
}

// ---- cached vs fresh equality ---------------------------------------------

// The acceptance suite: one engine with the cache, one without, over the
// same manager. Under a randomized mixed insert/erase schedule, every
// kind's result must be identical across (no-cache, cache-miss,
// cache-hit) — queries run one at a time against a quiescent graph, so
// any mismatch is the cache serving a wrong or stale entry.
TEST(ResultCache, CachedVsFreshEqualityAllKinds) {
  const vertex_id n = 256;
  snapshot_manager<empty_weight> mgr(n);
  result_cache cache;
  mgr.attach_cache(&cache);

  query_engine_options copts;
  copts.cache = &cache;
  query_engine<empty_weight> cached(mgr.store(), &mgr.overlay(), 2, copts);
  query_engine<empty_weight> plain(mgr.store(), &mgr.overlay(), 2);

  const std::vector<query_kind> kinds = {
      query_kind::degree,       query_kind::neighbors,
      query_kind::connected,    query_kind::component,
      query_kind::bfs_distance, query_kind::kcore_max,
      query_kind::triangles,    query_kind::connectivity_refine};

  parlib::random rng(7);
  std::size_t r = 0;
  for (std::size_t step = 0; step < 12; ++step) {
    // Mixed batch: mostly inserts, a growing share of erases of edges
    // that may or may not exist (erase of an absent edge is a no-op).
    std::vector<uw_update> ups;
    for (std::size_t i = 0; i < 96; ++i, ++r) {
      const auto u = static_cast<vertex_id>(rng.ith_rand(3 * r) % n);
      const auto v = static_cast<vertex_id>(rng.ith_rand(3 * r + 1) % n);
      if (u == v) continue;
      const bool erase = step > 2 && rng.ith_rand(3 * r + 2) % 4 == 0;
      ups.push_back({u, v, {},
                     erase ? gbbs::dynamic::update_op::erase
                           : gbbs::dynamic::update_op::insert});
    }
    mgr.ingest(std::move(ups));
    mgr.publish();

    for (const query_kind k : kinds) {
      query q;
      q.kind = k;
      q.u = static_cast<vertex_id>(rng.ith_rand(1000 + 2 * step) % n);
      q.v = static_cast<vertex_id>(rng.ith_rand(1001 + 2 * step) % n);
      const query_result ref = plain.submit(q).get();
      const query_result miss = cached.submit(q).get();
      const query_result hit = cached.submit(q).get();
      ASSERT_EQ(ref.status, query_status::ok);
      for (const query_result* got : {&miss, &hit}) {
        EXPECT_EQ(got->status, ref.status) << query_kind_name(k);
        EXPECT_EQ(got->value, ref.value) << query_kind_name(k);
        EXPECT_EQ(got->list, ref.list) << query_kind_name(k);
      }
    }
  }
  EXPECT_GT(cache.hits(), 0u);
}

// ---- invalidation precision -----------------------------------------------

// Counter-verified precision on a point read (read-set = {bucket(u)}):
// a bucket-disjoint batch must keep the entry hot (hit, no invalidation
// delta), a batch touching the bucket must evict it (miss, invalidation
// +1). Counters are registry-global, so all assertions are deltas.
TEST(ResultCache, InvalidationPrecision) {
  const vertex_id n = 512;
  snapshot_manager<empty_weight> mgr(n);
  result_cache cache;
  mgr.attach_cache(&cache);
  query_engine_options opts;
  opts.cache = &cache;
  query_engine<empty_weight> engine(mgr.store(), &mgr.overlay(), 1, opts);

  const vertex_id a = 10;
  mgr.ingest(make_updates({{a, 20}, {20, 30}}));
  mgr.publish();

  query qa{query_kind::degree, a, 0};
  bucket_set qa_reads;
  qa_reads.add_vertex(a);

  // Prime: first evaluation misses and caches the entry.
  const std::uint64_t m0 = cache.misses();
  EXPECT_EQ(engine.submit(qa).get().value, 1u);
  EXPECT_EQ(cache.misses(), m0 + 1);

  // Disjoint batch: neither endpoint (nor its mirror) lands in bucket(a).
  const vertex_id w = vertex_outside(qa_reads, a + 1, n);
  const vertex_id x = vertex_outside(qa_reads, w + 1, n);
  mgr.ingest(make_updates({{w, x}}));
  mgr.publish();
  {
    const std::uint64_t h0 = cache.hits();
    const std::uint64_t inv0 = cache.invalidations();
    EXPECT_EQ(engine.submit(qa).get().value, 1u);
    EXPECT_EQ(cache.hits(), h0 + 1) << "disjoint batch must keep the entry";
    EXPECT_EQ(cache.invalidations(), inv0);
  }

  // Touching batch: (a, w) touches bucket(a) — the entry must go, and the
  // re-evaluation must see the new degree.
  mgr.ingest(make_updates({{a, w}}));
  mgr.publish();
  {
    const std::uint64_t h0 = cache.hits();
    const std::uint64_t m1 = cache.misses();
    const std::uint64_t inv0 = cache.invalidations();
    EXPECT_EQ(engine.submit(qa).get().value, 2u);
    EXPECT_EQ(cache.hits(), h0);
    EXPECT_EQ(cache.misses(), m1 + 1);
    EXPECT_EQ(cache.invalidations(), inv0 + 1);
  }
}

// Whole-graph analytics depend on edges anywhere (all-buckets read-set):
// *any* batch invalidates them — never a stale hit.
TEST(ResultCache, WholeGraphEntriesInvalidatedByAnyBatch) {
  const vertex_id n = 128;
  snapshot_manager<empty_weight> mgr(n);
  result_cache cache;
  mgr.attach_cache(&cache);
  query_engine_options opts;
  opts.cache = &cache;
  query_engine<empty_weight> engine(mgr.store(), &mgr.overlay(), 1, opts);

  mgr.ingest(make_updates({{0, 1}, {1, 2}, {2, 0}, {3, 4}}));
  mgr.publish();

  const query qt{query_kind::triangles, 0, 0};
  EXPECT_EQ(engine.submit(qt).get().value, 1u);
  {
    const std::uint64_t h0 = cache.hits();
    EXPECT_EQ(engine.submit(qt).get().value, 1u);  // repeat: hit
    EXPECT_EQ(cache.hits(), h0 + 1);
  }
  mgr.ingest(make_updates({{100, 101}}));  // far from the triangle
  mgr.publish();
  {
    const std::uint64_t h0 = cache.hits();
    EXPECT_EQ(engine.submit(qt).get().value, 1u);
    EXPECT_EQ(cache.hits(), h0) << "all-bucket entry must not survive";
  }
}

// A connectivity answer can change without either endpoint's bucket being
// touched (a remote edge merges their components), so connected/component
// entries carry the all-buckets read-set — this is the scenario that
// makes the conservative choice load-bearing.
TEST(ResultCache, ConnectedInvalidatedByRemoteMerge) {
  const vertex_id n = 64;
  snapshot_manager<empty_weight> mgr(n);
  result_cache cache;
  mgr.attach_cache(&cache);
  query_engine_options opts;
  opts.cache = &cache;
  query_engine<empty_weight> engine(mgr.store(), &mgr.overlay(), 1, opts);

  // 0-1  and  2-3 are separate components.
  mgr.ingest(make_updates({{0, 1}, {2, 3}}));
  mgr.publish();
  const query qc{query_kind::connected, 0, 3};
  EXPECT_EQ(engine.submit(qc).get().value, 0u);
  EXPECT_EQ(engine.submit(qc).get().value, 0u);  // cached

  // Merge via 1-2: touches buckets of 1 and 2, NOT of 0 or 3.
  mgr.ingest(make_updates({{1, 2}}));
  mgr.publish();
  EXPECT_EQ(engine.submit(qc).get().value, 1u)
      << "stale connectivity served after a remote merge";
}

// ---- standing queries -----------------------------------------------------

TEST(Subscription, DeliversOnIntersectingBatchesOnly) {
  const vertex_id n = 512;
  snapshot_manager<empty_weight> mgr(n);
  result_cache cache;
  mgr.attach_cache(&cache);
  query_engine_options opts;
  opts.cache = &cache;
  query_engine<empty_weight> engine(mgr.store(), &mgr.overlay(), 1, opts);

  const vertex_id a = 5;
  mgr.ingest(make_updates({{a, 400}}));  // initial neighbor far from the
                                         // vertex_outside scan range
  mgr.publish();

  auto sub = engine.subscribe(query{query_kind::degree, a, 0});
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(engine.num_subscriptions(), 1u);
  engine.drain();  // initial evaluation
  query_result r;
  ASSERT_TRUE(sub->wait(&r, 5.0));
  EXPECT_EQ(r.value, 1u);

  // Disjoint batch: no re-evaluation, nothing delivered.
  bucket_set a_reads;
  a_reads.add_vertex(a);
  const vertex_id w = vertex_outside(a_reads, a + 1, n);
  const vertex_id x = vertex_outside(a_reads, w + 1, n);
  const std::uint64_t d0 = sub->delivered();
  mgr.ingest(make_updates({{w, x}}));
  mgr.publish();
  engine.drain();
  EXPECT_EQ(sub->delivered(), d0);
  EXPECT_FALSE(sub->poll(&r));

  // Touching batch: one re-evaluation with the fresh value.
  mgr.ingest(make_updates({{a, w}}));
  mgr.publish();
  engine.drain();
  ASSERT_TRUE(sub->wait(&r, 5.0));
  EXPECT_EQ(r.value, 2u);

  // After unsubscribe, further touching batches deliver nothing.
  engine.unsubscribe(sub);
  EXPECT_EQ(engine.num_subscriptions(), 0u);
  const std::uint64_t d1 = sub->delivered();
  mgr.ingest(make_updates({{a, x}}));
  mgr.publish();
  engine.drain();
  EXPECT_EQ(sub->delivered(), d1);
}

TEST(Subscription, BoundedChannelDropsOldest) {
  const vertex_id n = 64;
  snapshot_manager<empty_weight> mgr(n);
  result_cache cache;
  mgr.attach_cache(&cache);
  query_engine_options opts;
  opts.cache = &cache;
  query_engine<empty_weight> engine(mgr.store(), &mgr.overlay(), 1, opts);

  const vertex_id a = 3;
  mgr.ingest(make_updates({{a, 4}}));
  mgr.publish();

  // Capacity-1 channel, never polled while results accumulate: each
  // delivery past the first evicts its predecessor, and the final poll
  // sees only the freshest answer.
  auto sub = engine.subscribe(query{query_kind::degree, a, 0},
                              /*channel_capacity=*/1);
  ASSERT_NE(sub, nullptr);
  engine.drain();
  for (vertex_id t = 5; t < 8; ++t) {
    mgr.ingest(make_updates({{a, t}}));
    mgr.publish();
    engine.drain();  // each touching batch re-evaluates before the next
  }
  EXPECT_EQ(sub->delivered(), 4u);  // initial + 3 re-evaluations
  EXPECT_EQ(sub->dropped(), 3u);
  query_result r;
  ASSERT_TRUE(sub->poll(&r));
  EXPECT_EQ(r.value, 4u);  // degree after all four inserts
  EXPECT_FALSE(sub->poll(&r));
}

TEST(Subscription, CallbackRunsAndStopCloses) {
  const vertex_id n = 64;
  snapshot_manager<empty_weight> mgr(n);
  result_cache cache;
  mgr.attach_cache(&cache);
  std::atomic<std::uint64_t> cb_count{0};
  std::shared_ptr<gbbs::serve::subscription> sub;
  {
    query_engine_options opts;
    opts.cache = &cache;
    query_engine<empty_weight> engine(mgr.store(), &mgr.overlay(), 1, opts);
    mgr.ingest(make_updates({{1, 2}}));
    mgr.publish();
    sub = engine.subscribe(
        query{query_kind::degree, 1, 0}, 8,
        [&](const query_result&) { cb_count.fetch_add(1); });
    ASSERT_NE(sub, nullptr);
    engine.drain();
    EXPECT_GE(cb_count.load(), 1u);
    EXPECT_FALSE(sub->closed());
  }  // engine destroyed: channel must be closed, buffered results remain
  EXPECT_TRUE(sub->closed());
  query_result r;
  EXPECT_TRUE(sub->poll(&r));
  EXPECT_EQ(r.value, 1u);
}

TEST(Subscription, RequiresCache) {
  snapshot_manager<empty_weight> mgr(16);
  query_engine<empty_weight> engine(mgr.store(), &mgr.overlay(), 1);
  EXPECT_EQ(engine.subscribe(query{query_kind::degree, 0, 0}), nullptr);
}

// ---- sharded ingest path --------------------------------------------------

TEST(ResultCache, ShardedInvalidationAndFreshness) {
  const vertex_id n = 256;
  gbbs::serve::sharded_snapshot_manager<empty_weight> mgr(
      n, {.num_shards = 2});
  result_cache cache;
  mgr.attach_cache(&cache);
  query_engine_options opts;
  opts.cache = &cache;
  query_engine<empty_weight> engine(mgr.store(), nullptr, 1, opts,
                                    mgr.router());

  const vertex_id a = 9;
  mgr.ingest(make_updates({{a, 17}}));
  mgr.publish();
  mgr.flush();

  query qa{query_kind::degree, a, 0};
  EXPECT_EQ(engine.submit(qa).get().value, 1u);
  {
    const std::uint64_t h0 = cache.hits();
    EXPECT_EQ(engine.submit(qa).get().value, 1u);
    EXPECT_EQ(cache.hits(), h0 + 1);
  }

  // A batch touching bucket(a): invalidated at ingest (pre-apply, at the
  // batch's clock), so no window where a reader can hit the stale entry.
  mgr.ingest(make_updates({{a, 33}}));
  mgr.publish();
  mgr.flush();
  {
    const std::uint64_t h0 = cache.hits();
    EXPECT_EQ(engine.submit(qa).get().value, 2u);
    EXPECT_EQ(cache.hits(), h0);
  }

  // Subscriptions ride the composite publish's merged delta summary.
  auto sub = engine.subscribe(qa);
  ASSERT_NE(sub, nullptr);
  engine.drain();
  query_result r;
  ASSERT_TRUE(sub->wait(&r, 5.0));
  EXPECT_EQ(r.value, 2u);
  mgr.ingest(make_updates({{a, 49}}));
  mgr.publish();
  mgr.flush();
  engine.drain();
  ASSERT_TRUE(sub->wait(&r, 5.0));
  EXPECT_EQ(r.value, 3u);
}

// ---- concurrency stress (the TSan target) ---------------------------------

// Writer ingesting random batches while reader threads slam repeated
// queries through the cached engine and a standing query stays live: the
// races this drives are lookup-vs-invalidate (lazy CAS evict), insert
// epoch checks vs last_touched stores, and on_delta vs reader re-arm.
// Correctness of served values under concurrency is test_serve's job —
// here every ok point read is additionally checked against a bound that
// a stale-beyond-one-batch entry would violate.
TEST(ResultCache, ConcurrentLookupInvalidateStress) {
  const vertex_id n = 1024;
  snapshot_manager<empty_weight> mgr(n);
  result_cache cache;
  mgr.attach_cache(&cache);
  query_engine_options opts;
  opts.cache = &cache;
  query_engine<empty_weight> engine(mgr.store(), &mgr.overlay(), 4, opts);

  mgr.ingest(make_updates({{0, 1}}));
  mgr.publish();
  auto sub = engine.subscribe(query{query_kind::degree, 0, 0});
  ASSERT_NE(sub, nullptr);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    parlib::random rng(11);
    std::size_t k = 0;
    for (std::size_t b = 0; b < 40; ++b) {
      std::vector<uw_update> ups;
      for (std::size_t i = 0; i < 64; ++i, ++k) {
        const auto u = static_cast<vertex_id>(rng.ith_rand(2 * k) % n);
        const auto v = static_cast<vertex_id>(rng.ith_rand(2 * k + 1) % n);
        if (u != v) ups.push_back({u, v, {}, gbbs::dynamic::update_op::insert});
      }
      mgr.ingest(std::move(ups));
      mgr.publish();
    }
    done.store(true, std::memory_order_release);
  });

  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&, t] {
      parlib::random rng(100 + t);
      std::size_t qi = 0;
      while (!done.load(std::memory_order_acquire)) {
        // Narrow key space so lookups repeatedly collide with the
        // writer's invalidations of the same entries.
        query q;
        q.kind = (qi & 1) ? query_kind::neighbors : query_kind::degree;
        q.u = static_cast<vertex_id>(rng.ith_rand(qi) % 32);
        const auto r = engine.submit(q).get();
        if (r.status == query_status::ok) {
          served.fetch_add(1, std::memory_order_relaxed);
          if (q.kind == query_kind::degree) {
            EXPECT_LE(r.value, n) << "degree out of range";
          }
        }
        ++qi;
      }
    });
  }
  writer.join();
  for (auto& c : clients) c.join();
  engine.drain();
  EXPECT_GT(served.load(), 0u);
  EXPECT_GT(sub->delivered(), 0u);
  EXPECT_GT(cache.invalidations() + cache.hits() + cache.misses(), 0u);
}

}  // namespace
