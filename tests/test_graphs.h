// Shared graph suite for parameterized algorithm tests: a mix of skewed
// (R-MAT), uniform (Erdos-Renyi), high-diameter (torus/grid/path), and
// structured corner cases (star, complete, disconnected).
#pragma once

#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace gbbs::testing {

struct graph_case {
  std::string name;
  graph<empty_weight> g;
};

inline graph<empty_weight> two_components(vertex_id half) {
  // Two disjoint cycles.
  auto edges = cycle_edges(half);
  for (vertex_id i = 0; i < half; ++i) {
    edges.push_back({half + i, half + (i + 1) % half, {}});
  }
  return build_symmetric_graph<empty_weight>(2 * half, std::move(edges));
}

inline std::vector<std::string> symmetric_suite_names() {
  return {"rmat",   "erdos_renyi", "torus",    "grid",
          "path",   "star",        "complete", "binary_tree",
          "two_cc", "empty"};
}

inline graph<empty_weight> make_symmetric(const std::string& name) {
  if (name == "rmat") return rmat_symmetric(11, 16000, 42);
  if (name == "erdos_renyi") {
    return build_symmetric_graph<empty_weight>(
        2048, erdos_renyi_edges(2048, 12000, 7));
  }
  if (name == "torus") return torus3d_symmetric(9);
  if (name == "grid") {
    return build_symmetric_graph<empty_weight>(30 * 40,
                                               grid2d_edges(30, 40));
  }
  if (name == "path") {
    return build_symmetric_graph<empty_weight>(512, path_edges(512));
  }
  if (name == "star") {
    return build_symmetric_graph<empty_weight>(700, star_edges(700));
  }
  if (name == "complete") {
    return build_symmetric_graph<empty_weight>(60, complete_edges(60));
  }
  if (name == "binary_tree") {
    return build_symmetric_graph<empty_weight>(1023,
                                               binary_tree_edges(1023));
  }
  if (name == "two_cc") return two_components(300);
  if (name == "empty") return build_symmetric_graph<empty_weight>(64, {});
  return build_symmetric_graph<empty_weight>(1, {});
}

inline std::vector<std::string> directed_suite_names() {
  return {"rmat_dir", "er_dir", "dag", "dicycle"};
}

inline graph<empty_weight> make_directed(const std::string& name) {
  if (name == "rmat_dir") return rmat_directed(11, 16000, 21);
  if (name == "er_dir") {
    return build_asymmetric_graph<empty_weight>(
        1024, erdos_renyi_edges(1024, 8000, 9));
  }
  if (name == "dag") {
    // Random DAG: edges only forward.
    auto edges = erdos_renyi_edges(1024, 6000, 13);
    for (auto& e : edges) {
      if (e.u > e.v) std::swap(e.u, e.v);
    }
    return build_asymmetric_graph<empty_weight>(1024, std::move(edges));
  }
  if (name == "dicycle") {
    edge_list edges;
    for (vertex_id i = 0; i < 400; ++i) edges.push_back({i, (i + 1) % 400, {}});
    return build_asymmetric_graph<empty_weight>(400, std::move(edges));
  }
  return build_asymmetric_graph<empty_weight>(1, {});
}

// Weighted versions (weights in [1, weight_range(n)]).
inline graph<std::uint32_t> make_symmetric_weighted(const std::string& name,
                                                    std::uint64_t seed = 5) {
  auto g = make_symmetric(name);
  auto edges = g.edges();
  edge_list unweighted(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    unweighted[i] = {edges[i].u, edges[i].v, {}};
  }
  return build_symmetric_graph<std::uint32_t>(
      g.num_vertices(),
      with_random_weights(unweighted, weight_range(g.num_vertices() + 1),
                          seed));
}

}  // namespace gbbs::testing
