// Tests for the batch-dynamic graph: live-view queries, erase semantics,
// weight overwrites, n-growing batches, and the snapshot-vs-rebuild
// equivalence the subsystem is specified by: replaying any edge stream in
// batches then compacting yields a CSR identical to graph_builder on the
// full edge list.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "dynamic/dynamic_graph.h"
#include "dynamic/stream.h"
#include "dynamic/update_batch.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace {

using gbbs::edge;
using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::dynamic::dynamic_graph;
using gbbs::dynamic::update;
using gbbs::dynamic::update_op;

using uw_update = update<empty_weight>;

uw_update ins(vertex_id u, vertex_id v) {
  return {u, v, {}, update_op::insert};
}
uw_update ers(vertex_id u, vertex_id v) {
  return {u, v, {}, update_op::erase};
}

template <typename G1, typename G2>
void expect_same_csr(const G1& a, const G2& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (vertex_id v = 0; v < a.num_vertices(); ++v) {
    auto na = a.out_neighbors(v);
    auto nb = b.out_neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "degree of " << v;
    for (std::size_t j = 0; j < na.size(); ++j) {
      ASSERT_EQ(na[j], nb[j]) << "neighbor " << j << " of " << v;
      ASSERT_EQ(a.out_weight(v, j), b.out_weight(v, j))
          << "weight " << j << " of " << v;
    }
  }
}

TEST(DynamicGraph, StartsEmpty) {
  dynamic_graph<empty_weight> dg(4);
  EXPECT_EQ(dg.num_vertices(), 4u);
  EXPECT_EQ(dg.num_edges(), 0u);
  EXPECT_EQ(dg.out_degree(2), 0u);
  EXPECT_FALSE(dg.contains_edge(0, 1));
}

TEST(DynamicGraph, EmptyBatchIsNoOp) {
  dynamic_graph<empty_weight> dg(4);
  dg.apply({});
  dg.apply_batch(gbbs::dynamic::make_batch<empty_weight>({}));
  EXPECT_EQ(dg.num_vertices(), 4u);
  EXPECT_EQ(dg.num_edges(), 0u);
  dg.compact();
  EXPECT_EQ(dg.base().num_vertices(), 4u);
}

TEST(DynamicGraph, InsertsAppearInLiveView) {
  dynamic_graph<empty_weight> dg(4);  // symmetric: updates are mirrored
  dg.apply({ins(0, 1), ins(0, 2), ins(2, 3)});
  EXPECT_EQ(dg.num_edges(), 6u);  // directed slots, both directions
  EXPECT_EQ(dg.out_degree(0), 2u);
  EXPECT_TRUE(dg.contains_edge(0, 1));
  EXPECT_TRUE(dg.contains_edge(1, 0));
  EXPECT_TRUE(dg.contains_edge(3, 2));
  EXPECT_FALSE(dg.contains_edge(1, 2));
  std::vector<vertex_id> nghs;
  dg.map_out_neighbors(0, [&](vertex_id, vertex_id v, empty_weight) {
    nghs.push_back(v);
  });
  EXPECT_EQ(nghs, (std::vector<vertex_id>{1, 2}));
}

TEST(DynamicGraph, DuplicateAndSelfLoopBatchesAreCleaned) {
  dynamic_graph<empty_weight> dg(4);
  dg.apply({ins(0, 1), ins(0, 1), ins(1, 1), ins(1, 0), ins(2, 2)});
  EXPECT_EQ(dg.num_edges(), 2u);  // only (0,1)/(1,0)
  EXPECT_FALSE(dg.contains_edge(1, 1));
  EXPECT_FALSE(dg.contains_edge(2, 2));
  expect_same_csr(dg.snapshot(),
                  gbbs::build_symmetric_graph<empty_weight>(
                      4, {{0, 1, {}}}));
}

TEST(DynamicGraph, EraseRemovesAcrossBatches) {
  dynamic_graph<empty_weight> dg(4);
  dg.apply({ins(0, 1), ins(1, 2)});
  dg.apply({ers(0, 1)});
  EXPECT_EQ(dg.num_edges(), 2u);
  EXPECT_FALSE(dg.contains_edge(0, 1));
  EXPECT_FALSE(dg.contains_edge(1, 0));
  EXPECT_TRUE(dg.contains_edge(1, 2));
  EXPECT_EQ(dg.out_degree(1), 1u);
}

TEST(DynamicGraph, EraseNonexistentEdgeIsNoOp) {
  dynamic_graph<empty_weight> dg(4);
  dg.apply({ins(0, 1)});
  dg.apply({ers(2, 3), ers(0, 3)});  // neither edge exists
  EXPECT_EQ(dg.num_edges(), 2u);
  EXPECT_TRUE(dg.contains_edge(0, 1));
  EXPECT_EQ(dg.out_degree(2), 0u);
  // Erasing on a compacted base is equally a no-op.
  dg.compact();
  dg.apply({ers(2, 3)});
  EXPECT_EQ(dg.num_edges(), 2u);
}

TEST(DynamicGraph, EraseThenReinsert) {
  dynamic_graph<empty_weight> dg(3);
  dg.apply({ins(0, 1)});
  dg.compact();
  dg.apply({ers(0, 1)});
  EXPECT_FALSE(dg.contains_edge(0, 1));
  dg.apply({ins(0, 1)});
  EXPECT_TRUE(dg.contains_edge(0, 1));
  EXPECT_EQ(dg.num_edges(), 2u);
  EXPECT_EQ(dg.delta_size(), 0u);  // reinsert of a base edge cancels out
}

TEST(DynamicGraph, WeightOverwriteKeepsDegree) {
  dynamic_graph<std::uint32_t> dg(3);
  dg.apply({{0, 1, 10, update_op::insert}});
  dg.compact();
  dg.apply({{0, 1, 99, update_op::insert}});
  EXPECT_EQ(dg.num_edges(), 2u);
  EXPECT_EQ(dg.out_degree(0), 1u);
  ASSERT_TRUE(dg.edge_weight(0, 1).has_value());
  EXPECT_EQ(*dg.edge_weight(0, 1), 99u);
  EXPECT_EQ(*dg.edge_weight(1, 0), 99u);
  auto snap = dg.snapshot();
  EXPECT_EQ(snap.out_weight(0, 0), 99u);
}

TEST(DynamicGraph, GrowingBatchExtendsVertexSet) {
  dynamic_graph<empty_weight> dg(2);
  dg.apply({ins(0, 1)});
  dg.apply({ins(1, 5), ins(7, 3)});  // ids beyond current n
  EXPECT_EQ(dg.num_vertices(), 8u);
  EXPECT_TRUE(dg.contains_edge(5, 1));
  EXPECT_TRUE(dg.contains_edge(3, 7));
  EXPECT_EQ(dg.out_degree(6), 0u);
  expect_same_csr(dg.snapshot(),
                  gbbs::build_symmetric_graph<empty_weight>(
                      8, {{0, 1, {}}, {1, 5, {}}, {7, 3, {}}}));
}

TEST(DynamicGraph, SeedsFromExistingSnapshot) {
  auto g = gbbs::rmat_symmetric(8, 2000, 3);
  vertex_id u = 0;
  while (g.out_degree(u) == 0) ++u;
  const vertex_id v = g.out_neighbors(u)[0];
  dynamic_graph<empty_weight> dg(g);
  EXPECT_EQ(dg.num_edges(), g.num_edges());
  dg.apply({ers(u, v)});
  auto snap = dg.snapshot();
  EXPECT_EQ(snap.num_edges() + 2, g.num_edges());
}

// ---- the acceptance criterion: stream -> compact == graph_builder ------

void stream_and_check(const std::vector<edge<empty_weight>>& edges,
                      vertex_id n, std::size_t batch_size,
                      bool check_every_batch) {
  gbbs::dynamic::edge_stream<empty_weight> stream(edges);
  dynamic_graph<empty_weight> dg(n);
  std::vector<edge<empty_weight>> seen;
  while (!stream.done()) {
    auto raw = stream.next_inserts(batch_size);
    for (const auto& u : raw) seen.push_back({u.u, u.v, {}});
    dg.apply(std::move(raw));
    if (check_every_batch) {
      expect_same_csr(dg.snapshot(),
                      gbbs::build_symmetric_graph<empty_weight>(n, seen));
    }
  }
  dg.compact();
  expect_same_csr(dg.base(),
                  gbbs::build_symmetric_graph<empty_weight>(n, edges));
}

TEST(DynamicGraph, StreamedRmatMatchesRebuild) {
  auto edges = gbbs::rmat_edges(10, 8000, 42);
  stream_and_check(edges, vertex_id{1} << 10, 1000,
                   /*check_every_batch=*/false);
}

TEST(DynamicGraph, StreamedGridMatchesRebuildEveryBatch) {
  auto edges = gbbs::grid2d_edges(20, 25);
  stream_and_check(edges, 20 * 25, 97, /*check_every_batch=*/true);
}

TEST(DynamicGraph, BatchSizeDoesNotChangeTheResult) {
  auto edges = gbbs::rmat_edges(9, 4000, 7);
  const vertex_id n = vertex_id{1} << 9;
  for (std::size_t batch : {std::size_t{64}, std::size_t{513},
                            std::size_t{4000}}) {
    stream_and_check(edges, n, batch, /*check_every_batch=*/false);
  }
}

TEST(DynamicGraph, InsertThenEraseSubsetMatchesRebuildOfSurvivors) {
  // Start from a deduplicated undirected edge set so "erased" and
  // "survivor" partition the edges cleanly.
  auto g = gbbs::rmat_symmetric(9, 4000, 11);
  auto edges = gbbs::dynamic::undirected_stream_edges(g);
  const vertex_id n = g.num_vertices();
  dynamic_graph<empty_weight> dg(n);
  dg.apply_batch(gbbs::dynamic::insert_batch(edges, /*mirror=*/true));
  // Erase every third edge.
  std::vector<uw_update> erases;
  std::vector<edge<empty_weight>> survivors;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i % 3 == 0) {
      erases.push_back(ers(edges[i].u, edges[i].v));
    } else {
      survivors.push_back(edges[i]);
    }
  }
  dg.apply(std::move(erases));
  dg.compact();
  expect_same_csr(dg.base(), gbbs::build_symmetric_graph<empty_weight>(
                                 n, survivors));
}

TEST(DynamicGraph, AsymmetricStreamMatchesDirectedRebuild) {
  auto edges = gbbs::rmat_edges(9, 4000, 5);
  const vertex_id n = vertex_id{1} << 9;
  dynamic_graph<empty_weight> dg(n, /*symmetric=*/false);
  gbbs::dynamic::edge_stream<empty_weight> stream(edges);
  while (!stream.done()) {
    dg.apply(stream.next_inserts(777));
  }
  dg.compact();
  auto rebuilt = gbbs::build_asymmetric_graph<empty_weight>(n, edges);
  expect_same_csr(dg.base(), rebuilt);
  // The transposed in-CSR must match too.
  for (vertex_id v = 0; v < n; ++v) {
    auto na = dg.base().in_neighbors(v);
    auto nb = rebuilt.in_neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "in-neighbors of " << v;
  }
}

TEST(DynamicGraph, WeightedStreamRoundTrips) {
  auto unweighted = gbbs::rmat_edges(9, 3000, 19);
  auto edges = gbbs::with_random_weights(unweighted, 31, 23);
  const vertex_id n = vertex_id{1} << 9;
  dynamic_graph<std::uint32_t> dg(n);
  gbbs::dynamic::edge_stream<std::uint32_t> stream(edges);
  while (!stream.done()) {
    dg.apply(stream.next_inserts(500));
  }
  dg.compact();
  // Builder keeps the FIRST weight of a duplicate edge, the stream keeps
  // the LAST; with_random_weights keys the weight on the endpoint pair, so
  // duplicates carry equal weights and both conventions agree.
  expect_same_csr(dg.base(),
                  gbbs::build_symmetric_graph<std::uint32_t>(n, edges));
}

TEST(DynamicGraph, AutoCompactionKeepsOverlayBounded) {
  auto edges = gbbs::rmat_edges(9, 6000, 11);
  const vertex_id n = vertex_id{1} << 9;
  dynamic_graph<empty_weight> dg(n);
  dg.set_compact_threshold(0.5);
  EXPECT_EQ(dg.compact_threshold(), 0.5);
  gbbs::dynamic::edge_stream<empty_weight> stream(edges);
  std::size_t max_overlay = 0;
  while (!stream.done()) {
    dg.apply(stream.next_inserts(512));
    max_overlay = std::max(max_overlay, dg.delta_size());
  }
  EXPECT_GT(dg.num_compactions(), 0u) << "threshold never triggered";
  // Between checks the overlay can hold at most one batch past the
  // trigger: threshold * max(base m, 1024) + mirrored batch.
  EXPECT_LE(max_overlay,
            static_cast<std::size_t>(
                0.5 * std::max<std::size_t>(dg.num_edges(), 1024)) +
                2 * 512);
  // Auto-compaction must not change the final graph.
  dg.compact();
  expect_same_csr(dg.base(),
                  gbbs::build_symmetric_graph<empty_weight>(n, edges));
}

TEST(DynamicGraph, AdoptBaseActsAsCompaction) {
  auto edges = gbbs::rmat_edges(8, 2000, 3);
  const vertex_id n = vertex_id{1} << 8;
  dynamic_graph<empty_weight> dg(n);
  dg.apply_batch(gbbs::dynamic::insert_batch(edges, /*mirror=*/true));
  EXPECT_GT(dg.delta_size(), 0u);
  auto snap = dg.snapshot();
  dg.adopt_base(snap);  // hand-off: the snapshot becomes the new base
  EXPECT_EQ(dg.delta_size(), 0u);
  EXPECT_EQ(dg.num_compactions(), 1u);
  expect_same_csr(dg.base(), snap);
  // Further updates keep working on the adopted base.
  dg.apply({ins(0, 7)});
  EXPECT_TRUE(dg.contains_edge(0, 7));
}

TEST(DynamicGraph, CompactIsIdempotentAndClearsDeltas) {
  auto edges = gbbs::rmat_edges(8, 1500, 29);
  dynamic_graph<empty_weight> dg(vertex_id{1} << 8);
  dg.apply_batch(gbbs::dynamic::insert_batch(edges, /*mirror=*/true));
  EXPECT_GT(dg.delta_size(), 0u);
  dg.compact();
  EXPECT_EQ(dg.delta_size(), 0u);
  auto first = dg.base().edges();
  dg.compact();
  auto second = dg.base().edges();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(dg.num_edges(), dg.base().num_edges());
}

}  // namespace
