// Degenerate-input robustness across every algorithm: empty graphs,
// singletons, inputs consisting only of self-loops / duplicates, and
// two-vertex graphs. These exercise the code paths that size-parameterized
// sweeps skip (empty frontiers, empty buckets, zero-edge contraction).
#include <gtest/gtest.h>

#include "algorithms/bellman_ford.h"
#include "algorithms/betweenness.h"
#include "algorithms/bfs.h"
#include "algorithms/biconnectivity.h"
#include "algorithms/coloring.h"
#include "algorithms/connectivity.h"
#include "algorithms/delta_stepping.h"
#include "algorithms/kcore.h"
#include "algorithms/ldd.h"
#include "algorithms/maximal_matching.h"
#include "algorithms/mis.h"
#include "algorithms/msf.h"
#include "algorithms/scc.h"
#include "algorithms/spanning_forest.h"
#include "algorithms/triangle.h"
#include "algorithms/wbfs.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace {

using gbbs::empty_weight;
using gbbs::vertex_id;

gbbs::graph<empty_weight> empty_graph(vertex_id n) {
  return gbbs::build_symmetric_graph<empty_weight>(n, {});
}

gbbs::graph<std::uint32_t> empty_weighted(vertex_id n) {
  return gbbs::build_symmetric_graph<std::uint32_t>(n, {});
}

TEST(EdgeCases, AllAlgorithmsOnEdgelessGraph) {
  auto g = empty_graph(16);
  auto gw = empty_weighted(16);
  auto gd = gbbs::build_asymmetric_graph<empty_weight>(16, {});

  EXPECT_EQ(gbbs::bfs(g, 0)[1], gbbs::kInfDist);
  EXPECT_EQ(gbbs::wbfs(gw, 0).dist[1],
            std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(gbbs::bellman_ford(gw, 0)[1], gbbs::kInfDist64);
  EXPECT_EQ(gbbs::delta_stepping(gw, 0).dist[0], 0u);
  EXPECT_EQ(gbbs::betweenness(g, 0)[0], 0.0);

  auto cc = gbbs::connectivity(g);
  for (vertex_id v = 1; v < 16; ++v) EXPECT_NE(cc[v], cc[0]);
  EXPECT_TRUE(gbbs::spanning_forest_ldd(g).empty());
  auto bi = gbbs::biconnectivity(g);
  EXPECT_EQ(bi.num_critical_edges, 0u);
  auto s = gbbs::scc(gd);
  EXPECT_EQ(s.labels.size(), 16u);

  EXPECT_TRUE(gbbs::msf(gw).forest.empty());
  auto mis = gbbs::mis_rootset(g);
  for (auto f : mis) EXPECT_EQ(f, 1);
  EXPECT_TRUE(gbbs::maximal_matching(g).empty());
  EXPECT_EQ(gbbs::num_colors(gbbs::color_graph(g)), 1u);
  auto kc = gbbs::kcore(g);
  EXPECT_EQ(kc.max_core, 0u);
  EXPECT_EQ(gbbs::triangle_count(g), 0u);
}

TEST(EdgeCases, SingleVertexGraph) {
  auto g = empty_graph(1);
  auto gw = empty_weighted(1);
  EXPECT_EQ(gbbs::bfs(g, 0)[0], 0u);
  EXPECT_EQ(gbbs::wbfs(gw, 0).dist[0], 0u);
  EXPECT_EQ(gbbs::connectivity(g).size(), 1u);
  EXPECT_EQ(gbbs::mis_rootset(g)[0], 1);
  EXPECT_EQ(gbbs::kcore(g).max_core, 0u);
  EXPECT_EQ(gbbs::color_graph(g)[0], 0u);
}

TEST(EdgeCases, SelfLoopsAndDuplicatesAreScrubbed) {
  std::vector<gbbs::edge<empty_weight>> edges = {
      {0, 0, {}}, {1, 1, {}}, {0, 1, {}}, {0, 1, {}}, {1, 0, {}},
      {2, 2, {}}, {2, 2, {}}};
  auto g = gbbs::build_symmetric_graph<empty_weight>(3, edges);
  EXPECT_EQ(g.num_edges(), 2u);  // just 0<->1
  // All algorithms behave as on the clean two-vertex graph.
  auto cc = gbbs::connectivity(g);
  EXPECT_EQ(cc[0], cc[1]);
  EXPECT_NE(cc[0], cc[2]);
  EXPECT_EQ(gbbs::triangle_count(g), 0u);
  auto mm = gbbs::maximal_matching(g);
  EXPECT_EQ(mm.size(), 1u);
  EXPECT_EQ(gbbs::kcore(g).max_core, 1u);
}

TEST(EdgeCases, TwoVertexGraph) {
  std::vector<gbbs::edge<std::uint32_t>> edges = {{0, 1, 7}};
  auto g = gbbs::build_symmetric_graph<std::uint32_t>(2, edges);
  EXPECT_EQ(gbbs::wbfs(g, 0).dist[1], 7u);
  EXPECT_EQ(gbbs::bellman_ford(g, 0)[1], 7);
  EXPECT_EQ(gbbs::delta_stepping(g, 0).dist[1], 7u);
  EXPECT_EQ(gbbs::msf(g).total_weight, 7u);
  auto bi = gbbs::biconnectivity(g);
  EXPECT_EQ(bi.edge_label(0, 1), bi.edge_label(1, 0));
  auto colors = gbbs::color_graph(g);
  EXPECT_NE(colors[0], colors[1]);
}

TEST(EdgeCases, SourceOutOfComponentStillTerminates) {
  // Source in the small component; most of the graph unreachable.
  std::vector<gbbs::edge<empty_weight>> edges = {{0, 1, {}}};
  for (vertex_id v = 2; v + 1 < 100; ++v) edges.push_back({v, v + 1, {}});
  auto g = gbbs::build_symmetric_graph<empty_weight>(100, edges);
  auto dist = gbbs::bfs(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[50], gbbs::kInfDist);
  auto dep = gbbs::betweenness(g, 0);
  EXPECT_EQ(dep[50], 0.0);
}

TEST(EdgeCases, DirectedGraphWithSinkAndSourceOnly) {
  // Pure DAG edges into a sink: SCC must be all singletons and trimming
  // should handle everything without a multi-search phase.
  std::vector<gbbs::edge<empty_weight>> edges = {
      {0, 3, {}}, {1, 3, {}}, {2, 3, {}}};
  auto g = gbbs::build_asymmetric_graph<empty_weight>(4, edges);
  auto res = gbbs::scc(g);
  std::set<vertex_id> labels(res.labels.begin(), res.labels.end());
  EXPECT_EQ(labels.size(), 4u);
}

TEST(EdgeCases, HugeDegreeSingleHub) {
  // One vertex adjacent to everything: stresses multi-block compressed
  // decode, blocked edgeMap block splitting, and the histogram heavy path.
  const vertex_id n = 5000;
  auto g = gbbs::build_symmetric_graph<empty_weight>(n, gbbs::star_edges(n));
  auto dist = gbbs::bfs(g, 1);
  EXPECT_EQ(dist[0], 1u);
  EXPECT_EQ(dist[4999], 2u);
  auto kc = gbbs::kcore(g);
  EXPECT_EQ(kc.max_core, 1u);
  auto mis = gbbs::mis_rootset(g);
  std::size_t size = 0;
  for (auto f : mis) size += f;
  EXPECT_TRUE(size == 1 || size == n - 1);
}

TEST(EdgeCases, LddBetaExtremes) {
  auto g = gbbs::build_symmetric_graph<empty_weight>(
      256, gbbs::cycle_edges(256));
  // Tiny beta: giant clusters; huge beta: mostly singletons. Both valid.
  for (double beta : {0.001, 0.99}) {
    auto clusters = gbbs::ldd(g, beta);
    for (vertex_id v = 0; v < 256; ++v) {
      ASSERT_NE(clusters[v], gbbs::kNoVertex);
      ASSERT_EQ(clusters[clusters[v]], clusters[v]);
    }
  }
}

TEST(EdgeCases, WbfsUnblockedVariantAgrees) {
  std::vector<gbbs::edge<std::uint32_t>> edges;
  for (vertex_id i = 0; i + 1 < 200; ++i) {
    edges.push_back({i, i + 1, (i % 5) + 1});
    if (i + 7 < 200) edges.push_back({i, i + 7, 3});
  }
  auto g = gbbs::build_symmetric_graph<std::uint32_t>(200, edges);
  auto blocked = gbbs::wbfs(g, 0, /*use_blocked=*/true);
  auto plain = gbbs::wbfs(g, 0, /*use_blocked=*/false);
  EXPECT_EQ(blocked.dist, plain.dist);
}

}  // namespace
