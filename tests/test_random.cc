// Tests for the splittable RNG, random permutations, exponential samples.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "parlib/random.h"

namespace {

TEST(Random, Deterministic) {
  parlib::random a(42), b(42);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.ith_rand(i), b.ith_rand(i));
}

TEST(Random, DifferentSeedsDiffer) {
  parlib::random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.ith_rand(i) == b.ith_rand(i));
  EXPECT_EQ(same, 0);
}

TEST(Random, ForkGivesIndependentStreams) {
  parlib::random r(7);
  auto c0 = r.fork(0), c1 = r.fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (c0.ith_rand(i) == c1.ith_rand(i));
  EXPECT_EQ(same, 0);
}

TEST(Random, UniformInUnitInterval) {
  parlib::random r(3);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = r.ith_uniform(i);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, ExponentialHasRightMean) {
  parlib::random r(11);
  const double beta = 0.2;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.ith_exponential(i, beta);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0 / beta, 0.05 / beta);
}

TEST(Random, Hash64AvalanchesLowBits) {
  // Consecutive inputs should produce well-spread low bits.
  std::vector<int> buckets(16, 0);
  for (std::uint64_t i = 0; i < 16000; ++i) {
    buckets[parlib::hash64(i) & 15]++;
  }
  for (int c : buckets) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

class PermutationSizes : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(Sizes, PermutationSizes,
                         ::testing::Values(0, 1, 2, 17, 1000, 65536, 200000));

TEST_P(PermutationSizes, RandomPermutationIsAPermutation) {
  const std::size_t n = GetParam();
  auto perm = parlib::random_permutation(n, parlib::random(5));
  ASSERT_EQ(perm.size(), n);
  std::vector<std::uint8_t> seen(n, 0);
  for (auto p : perm) {
    ASSERT_LT(p, n);
    ASSERT_EQ(seen[p], 0);
    seen[p] = 1;
  }
}

TEST(Random, PermutationActuallyShuffles) {
  const std::size_t n = 10000;
  auto perm = parlib::random_permutation(n, parlib::random(9));
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < n; ++i) fixed += (perm[i] == i);
  // Expected number of fixed points of a uniform permutation is 1.
  EXPECT_LT(fixed, 20u);
}

TEST(Random, PermutationSeedsDiffer) {
  auto p1 = parlib::random_permutation(1000, parlib::random(1));
  auto p2 = parlib::random_permutation(1000, parlib::random(2));
  EXPECT_NE(p1, p2);
}

}  // namespace
