// Tests for merge / remove_duplicates / group_by.
#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "parlib/collections.h"
#include "parlib/random.h"

namespace {

class MergeSizes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};
INSTANTIATE_TEST_SUITE_P(
    Sizes, MergeSizes,
    ::testing::Values(std::make_pair(0, 0), std::make_pair(0, 10),
                      std::make_pair(10, 0), std::make_pair(1, 1),
                      std::make_pair(1000, 1), std::make_pair(5000, 5000),
                      std::make_pair(100000, 30000)));

TEST_P(MergeSizes, MatchesStdMerge) {
  const auto [na, nb] = GetParam();
  auto a = parlib::tabulate<std::uint32_t>(na, [](std::size_t i) {
    return parlib::hash32(static_cast<std::uint32_t>(i)) % 100000;
  });
  auto b = parlib::tabulate<std::uint32_t>(nb, [](std::size_t i) {
    return parlib::hash32(static_cast<std::uint32_t>(i + 77)) % 100000;
  });
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  auto got = parlib::merge(a, b);
  std::vector<std::uint32_t> expected(na + nb);
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
  EXPECT_EQ(got, expected);
}

TEST(Merge, StableTiesPreferFirstInput) {
  std::vector<std::pair<std::uint32_t, char>> a = {{1, 'a'}, {2, 'a'}};
  std::vector<std::pair<std::uint32_t, char>> b = {{1, 'b'}, {2, 'b'}};
  auto got = parlib::merge(a, b, [](const auto& x, const auto& y) {
    return x.first < y.first;
  });
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].second, 'a');
  EXPECT_EQ(got[1].second, 'b');
  EXPECT_EQ(got[2].second, 'a');
  EXPECT_EQ(got[3].second, 'b');
}

TEST(RemoveDuplicates, ReturnsSortedDistinct) {
  const std::size_t n = 100000;
  auto v = parlib::tabulate<std::uint32_t>(n, [](std::size_t i) {
    return static_cast<std::uint32_t>(parlib::hash64(i) % 997);
  });
  std::set<std::uint32_t> expected(v.begin(), v.end());
  auto got = parlib::remove_duplicates(v);
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()));
}

TEST(RemoveDuplicates, EmptyAndSingleton) {
  EXPECT_TRUE(parlib::remove_duplicates(std::vector<std::uint32_t>{}).empty());
  auto got = parlib::remove_duplicates(std::vector<std::uint32_t>{5});
  EXPECT_EQ(got, (std::vector<std::uint32_t>{5}));
}

TEST(RemoveDuplicates, CustomKeyKeepsFirstOccurrence) {
  // Dedupe pairs by first; stable sort keeps the earliest second.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> v = {
      {3, 100}, {1, 200}, {3, 300}, {1, 400}, {2, 500}};
  auto got = parlib::remove_duplicates(
      v, [](const auto& p) { return p.first; });
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<std::uint32_t, std::uint32_t>{1, 200}));
  EXPECT_EQ(got[1], (std::pair<std::uint32_t, std::uint32_t>{2, 500}));
  EXPECT_EQ(got[2], (std::pair<std::uint32_t, std::uint32_t>{3, 100}));
}

TEST(GroupBy, GroupsMatchReference) {
  const std::size_t n = 50000;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs(n);
  for (std::size_t i = 0; i < n; ++i) {
    pairs[i] = {static_cast<std::uint32_t>(parlib::hash64(i) % 313),
                static_cast<std::uint32_t>(i)};
  }
  std::map<std::uint32_t, std::vector<std::uint32_t>> expected;
  for (const auto& [k, v] : pairs) expected[k].push_back(v);
  auto got = parlib::group_by(pairs);
  ASSERT_EQ(got.size(), expected.size());
  std::uint32_t prev_key = 0;
  for (std::size_t g = 0; g < got.size(); ++g) {
    if (g > 0) {
      ASSERT_GT(got[g].first, prev_key);  // keys ascending
    }
    prev_key = got[g].first;
    ASSERT_EQ(got[g].second, expected[got[g].first]);  // stable order
  }
}

TEST(GroupBy, EmptyInput) {
  EXPECT_TRUE(
      parlib::group_by(std::vector<std::pair<std::uint32_t, int>>{}).empty());
}

TEST(GroupBy, SingleKey) {
  std::vector<std::pair<std::uint32_t, int>> pairs = {{7, 1}, {7, 2}, {7, 3}};
  auto got = parlib::group_by(pairs);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 7u);
  EXPECT_EQ(got[0].second, (std::vector<int>{1, 2, 3}));
}

}  // namespace
