// Tests for graph contraction (the recursion step of connectivity).
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/contraction.h"
#include "graph/generators.h"

namespace {

using gbbs::empty_weight;
using gbbs::vertex_id;

TEST(Contraction, TwoClustersOneEdge) {
  // Path 0-1-2-3, clusters {0,1} and {2,3}: quotient is a single edge.
  auto g = gbbs::build_symmetric_graph<empty_weight>(4, gbbs::path_edges(4));
  std::vector<vertex_id> labels = {0, 0, 2, 2};
  auto res = gbbs::contract(g, labels);
  EXPECT_EQ(res.quotient.num_vertices(), 2u);
  EXPECT_EQ(res.quotient.num_edges(), 2u);  // symmetric: both directions
  EXPECT_NE(res.cluster_to_vertex[0], gbbs::kNoVertex);
  EXPECT_NE(res.cluster_to_vertex[2], gbbs::kNoVertex);
  EXPECT_EQ(res.cluster_to_vertex[1], gbbs::kNoVertex);
}

TEST(Contraction, AllOneClusterGivesIsolatedVertex) {
  auto g = gbbs::build_symmetric_graph<empty_weight>(5, gbbs::cycle_edges(5));
  std::vector<vertex_id> labels(5, 3);
  auto res = gbbs::contract(g, labels);
  EXPECT_EQ(res.quotient.num_vertices(), 1u);
  EXPECT_EQ(res.quotient.num_edges(), 0u);
}

TEST(Contraction, SingletonClustersReproduceGraph) {
  auto g = gbbs::rmat_symmetric(8, 3000, 3);
  std::vector<vertex_id> labels(g.num_vertices());
  for (vertex_id v = 0; v < g.num_vertices(); ++v) labels[v] = v;
  auto res = gbbs::contract(g, labels);
  EXPECT_EQ(res.quotient.num_vertices(), g.num_vertices());
  EXPECT_EQ(res.quotient.num_edges(), g.num_edges());
}

TEST(Contraction, ParallelEdgesBetweenClustersDeduplicated) {
  // K4 split into two clusters of two: 4 cross edges collapse to one
  // undirected edge.
  auto g =
      gbbs::build_symmetric_graph<empty_weight>(4, gbbs::complete_edges(4));
  std::vector<vertex_id> labels = {0, 0, 1, 1};
  auto res = gbbs::contract(g, labels);
  EXPECT_EQ(res.quotient.num_vertices(), 2u);
  EXPECT_EQ(res.quotient.num_edges(), 2u);
}

TEST(Contraction, QuotientHasNoSelfLoops) {
  auto g = gbbs::rmat_symmetric(9, 8000, 5);
  // Cluster by id/16 — plenty of intra-cluster edges to drop.
  std::vector<vertex_id> labels(g.num_vertices());
  for (vertex_id v = 0; v < g.num_vertices(); ++v) labels[v] = v / 16 * 16;
  auto res = gbbs::contract(g, labels);
  for (vertex_id v = 0; v < res.quotient.num_vertices(); ++v) {
    for (vertex_id u : res.quotient.out_neighbors(v)) {
      ASSERT_NE(u, v);
    }
  }
}

TEST(Contraction, QuotientConnectivityMatchesClusterAdjacency) {
  auto g = gbbs::torus3d_symmetric(6);
  // Slabs along the first dimension as clusters.
  std::vector<vertex_id> labels(g.num_vertices());
  for (vertex_id v = 0; v < g.num_vertices(); ++v) labels[v] = v / 36;
  auto res = gbbs::contract(g, labels);
  EXPECT_EQ(res.quotient.num_vertices(), 6u);
  // Each slab touches its two cyclic neighbors.
  for (vertex_id v = 0; v < 6; ++v) {
    ASSERT_EQ(res.quotient.out_degree(v), 2u) << v;
  }
}

}  // namespace
