// Tests for the Julienne bucketing structure: traversal order, lazy
// deletion, window overflow and redistribution, both directions.
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/bucketing.h"

namespace {

using gbbs::bucket_id;
using gbbs::bucket_order;
using gbbs::kNullBucket;
using gbbs::vertex_id;

TEST(Bucketing, IncreasingTraversalVisitsAllInOrder) {
  // d(v) = v % 10; all identifiers must come out grouped by bucket,
  // buckets in increasing order.
  const vertex_id n = 1000;
  std::vector<bucket_id> d(n);
  for (vertex_id v = 0; v < n; ++v) d[v] = v % 10;
  auto b = gbbs::make_buckets(
      n, [&](vertex_id v) { return d[v]; }, bucket_order::increasing);
  bucket_id last = 0;
  std::size_t seen = 0;
  bool first = true;
  while (true) {
    auto [bkt, ids] = b.next_bucket();
    if (bkt == kNullBucket) break;
    if (!first) {
      EXPECT_GT(bkt, last);
    }
    first = false;
    last = bkt;
    for (vertex_id v : ids) {
      ASSERT_EQ(d[v], bkt);
      d[v] = kNullBucket;  // finished
      ++seen;
    }
  }
  EXPECT_EQ(seen, n);
}

TEST(Bucketing, DecreasingTraversal) {
  const vertex_id n = 500;
  std::vector<bucket_id> d(n);
  for (vertex_id v = 0; v < n; ++v) d[v] = v % 7;
  auto b = gbbs::make_buckets(
      n, [&](vertex_id v) { return d[v]; }, bucket_order::decreasing);
  bucket_id last = 0;
  bool first = true;
  std::size_t seen = 0;
  while (true) {
    auto [bkt, ids] = b.next_bucket();
    if (bkt == kNullBucket) break;
    if (!first) {
      EXPECT_LT(bkt, last);
    }
    first = false;
    last = bkt;
    for (vertex_id v : ids) {
      ASSERT_EQ(d[v], bkt);
      d[v] = kNullBucket;
      ++seen;
    }
  }
  EXPECT_EQ(seen, n);
}

TEST(Bucketing, UpdateMovesToLaterBucket) {
  const vertex_id n = 10;
  std::vector<bucket_id> d(n, 2);
  auto b = gbbs::make_buckets(
      n, [&](vertex_id v) { return d[v]; }, bucket_order::increasing);
  // Move vertex 5 to bucket 4 before popping anything.
  d[5] = 4;
  b.update_buckets({{5, 4}});
  auto [bkt, ids] = b.next_bucket();
  ASSERT_EQ(bkt, 2u);
  EXPECT_EQ(ids.size(), n - 1);  // 5's stale copy filtered out
  for (vertex_id v : ids) {
    EXPECT_NE(v, 5u);
    d[v] = kNullBucket;
  }
  auto [bkt2, ids2] = b.next_bucket();
  ASSERT_EQ(bkt2, 4u);
  ASSERT_EQ(ids2.size(), 1u);
  EXPECT_EQ(ids2[0], 5u);
  d[5] = kNullBucket;
  EXPECT_EQ(b.next_bucket().first, kNullBucket);
}

TEST(Bucketing, StaleFinishedEntriesAreDropped) {
  const vertex_id n = 20;
  std::vector<bucket_id> d(n, 3);
  auto b = gbbs::make_buckets(
      n, [&](vertex_id v) { return d[v]; }, bucket_order::increasing);
  // Finish half the identifiers outside the structure.
  for (vertex_id v = 0; v < n; v += 2) d[v] = kNullBucket;
  auto [bkt, ids] = b.next_bucket();
  ASSERT_EQ(bkt, 3u);
  EXPECT_EQ(ids.size(), n / 2);
  for (vertex_id v : ids) EXPECT_EQ(v % 2, 1u);
}

TEST(Bucketing, OverflowRedistributes) {
  // Buckets far beyond the open window (window = 4) force the overflow
  // path, including re-seeding the window several times.
  const vertex_id n = 300;
  std::vector<bucket_id> d(n);
  for (vertex_id v = 0; v < n; ++v) d[v] = (v * 37) % 1000;
  auto b = gbbs::buckets(
      n, [&](vertex_id v) { return d[v]; }, bucket_order::increasing, 4);
  bucket_id last = 0;
  bool first = true;
  std::size_t seen = 0;
  while (true) {
    auto [bkt, ids] = b.next_bucket();
    if (bkt == kNullBucket) break;
    if (!first) {
      EXPECT_GT(bkt, last);
    }
    first = false;
    last = bkt;
    for (vertex_id v : ids) {
      ASSERT_EQ(d[v], bkt);
      d[v] = kNullBucket;
      ++seen;
    }
  }
  EXPECT_EQ(seen, n);
}

TEST(Bucketing, DynamicUpdatesDuringTraversal) {
  // wBFS-like usage: popping a bucket may move other identifiers to larger
  // buckets (distance improvements).
  const vertex_id n = 50;
  std::vector<bucket_id> d(n);
  for (vertex_id v = 0; v < n; ++v) d[v] = 100;  // all start far away
  d[0] = 0;
  auto b = gbbs::make_buckets(
      n, [&](vertex_id v) { return d[v]; }, bucket_order::increasing);
  std::size_t processed = 0;
  while (true) {
    auto [bkt, ids] = b.next_bucket();
    if (bkt == kNullBucket) break;
    std::vector<std::pair<vertex_id, bucket_id>> updates;
    for (vertex_id v : ids) {
      ++processed;
      // "Relax": v settles; v+1 moves to bucket bkt+1 if still at 100.
      if (v + 1 < n && d[v + 1] == 100) {
        d[v + 1] = bkt + 1;
        updates.push_back({v + 1, bkt + 1});
      }
      d[v] = kNullBucket;
    }
    b.update_buckets(updates);
  }
  EXPECT_EQ(processed, n);  // chain fully relaxed: everyone got processed
}

TEST(Bucketing, GetBucketFiltersUnchanged) {
  EXPECT_EQ(gbbs::buckets<bucket_id (*)(vertex_id)>::get_bucket(5, 5),
            kNullBucket);
  EXPECT_EQ(gbbs::buckets<bucket_id (*)(vertex_id)>::get_bucket(5, 7), 7u);
}

TEST(Bucketing, EmptyStructure) {
  auto b = gbbs::make_buckets(
      0, [](vertex_id) { return kNullBucket; }, bucket_order::increasing);
  EXPECT_EQ(b.next_bucket().first, kNullBucket);
}

TEST(Bucketing, AllNullIdentifiers) {
  auto b = gbbs::make_buckets(
      100, [](vertex_id) { return kNullBucket; }, bucket_order::increasing);
  EXPECT_EQ(b.next_bucket().first, kNullBucket);
}

TEST(Bucketing, OverflowDeduplicatesRepeatedInserts) {
  // Regression: an identifier updated several times while its target bucket
  // lies beyond the open window accumulates copies in the overflow; after
  // redistribution it must still be popped exactly once.
  const vertex_id n = 8;
  std::vector<bucket_id> d(n, 0);
  d[3] = 1000;  // far beyond a 4-bucket window
  auto b = gbbs::buckets(
      n, [&](vertex_id v) { return d[v]; }, bucket_order::increasing, 4);
  // Move vertex 3 around within overflow territory several times.
  for (bucket_id target : {900u, 800u, 700u, 600u}) {
    d[3] = target;
    b.update_buckets({{3, target}});
  }
  std::size_t pops_of_3 = 0;
  while (true) {
    auto [bkt, ids] = b.next_bucket();
    if (bkt == kNullBucket) break;
    for (vertex_id v : ids) {
      if (v == 3) ++pops_of_3;
      ASSERT_EQ(d[v], bkt);
      d[v] = kNullBucket;
    }
  }
  EXPECT_EQ(pops_of_3, 1u);
}

TEST(Bucketing, RoundsCounterTracksPops) {
  const vertex_id n = 30;
  std::vector<bucket_id> d(n);
  for (vertex_id v = 0; v < n; ++v) d[v] = v % 3;
  auto b = gbbs::make_buckets(
      n, [&](vertex_id v) { return d[v]; }, bucket_order::increasing);
  std::size_t pops = 0;
  while (true) {
    auto [bkt, ids] = b.next_bucket();
    if (bkt == kNullBucket) break;
    ++pops;
    for (vertex_id v : ids) d[v] = kNullBucket;
  }
  EXPECT_EQ(pops, 3u);
  EXPECT_EQ(b.num_rounds(), 3u);
}

}  // namespace
