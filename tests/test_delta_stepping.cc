// Delta-stepping vs Dijkstra and vs wBFS, across deltas.
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "algorithms/delta_stepping.h"
#include "algorithms/wbfs.h"
#include "seq/reference.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

class DeltaSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, DeltaSuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(DeltaSuite, MatchesDijkstra) {
  auto g = gbbs::testing::make_symmetric_weighted(GetParam());
  if (g.num_vertices() == 0) return;
  const vertex_id src = g.num_vertices() / 5;
  auto got = gbbs::delta_stepping(g, src);
  auto expected = gbbs::seq::dijkstra(g, src);
  for (std::size_t v = 0; v < expected.size(); ++v) {
    if (expected[v] == gbbs::seq::kInfDist64) {
      ASSERT_EQ(got.dist[v], std::numeric_limits<std::uint32_t>::max()) << v;
    } else {
      ASSERT_EQ(static_cast<std::int64_t>(got.dist[v]), expected[v])
          << GetParam() << " v=" << v;
    }
  }
}

TEST_P(DeltaSuite, AllDeltasAgreeWithWbfs) {
  auto g = gbbs::testing::make_symmetric_weighted(GetParam(), 31);
  if (g.num_vertices() == 0) return;
  const vertex_id src = 0;
  auto reference = gbbs::wbfs(g, src);
  for (std::uint32_t delta : {1u, 2u, 5u, 100u}) {
    auto got = gbbs::delta_stepping(g, src, delta);
    ASSERT_EQ(got.dist, reference.dist) << GetParam() << " delta=" << delta;
  }
}

TEST(DeltaStepping, DeltaOneDegeneratesToDialsBuckets) {
  // With delta=1 every bucket is a single distance: bucket count equals the
  // number of distinct finite distances.
  std::vector<gbbs::edge<std::uint32_t>> edges;
  for (vertex_id i = 0; i + 1 < 30; ++i) edges.push_back({i, i + 1, 1});
  auto g = gbbs::build_symmetric_graph<std::uint32_t>(30, edges);
  auto got = gbbs::delta_stepping(g, 0, 1);
  EXPECT_EQ(got.num_buckets_processed, 30u);
}

TEST(DeltaStepping, LargeDeltaCollapsesToBellmanFordish) {
  // Huge delta: a single bucket, all relaxation through the light phase.
  auto g = gbbs::testing::make_symmetric_weighted("grid");
  auto got = gbbs::delta_stepping(g, 0, 1u << 30);
  auto expected = gbbs::seq::dijkstra(g, 0);
  for (std::size_t v = 0; v < expected.size(); ++v) {
    if (expected[v] != gbbs::seq::kInfDist64) {
      ASSERT_EQ(static_cast<std::int64_t>(got.dist[v]), expected[v]);
    }
  }
  EXPECT_LE(got.num_buckets_processed, 2u);
}

}  // namespace
