// Tests for the parallel merge sort, radix integer sort, counting sort, and
// approximate k-th smallest selection.
#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "parlib/integer_sort.h"
#include "parlib/random.h"
#include "parlib/sort.h"

namespace {

class SortSizes : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(Sizes, SortSizes,
                         ::testing::Values(0, 1, 2, 10, 1000, 4095, 4096,
                                           4097, 50000, 300000));

TEST_P(SortSizes, MergeSortMatchesStdSort) {
  const std::size_t n = GetParam();
  auto v = parlib::tabulate<std::uint64_t>(
      n, [](std::size_t i) { return parlib::hash64(i) % 1000003; });
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parlib::sort_inplace(v);
  EXPECT_EQ(v, expected);
}

TEST_P(SortSizes, IntegerSortMatchesStdSort) {
  const std::size_t n = GetParam();
  auto v = parlib::tabulate<std::uint32_t>(n, [](std::size_t i) {
    return parlib::hash32(static_cast<std::uint32_t>(i)) % 77771;
  });
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parlib::integer_sort_inplace(v, [](std::uint32_t x) { return x; });
  EXPECT_EQ(v, expected);
}

TEST(Sort, MergeSortIsStable) {
  // Sort pairs by first only; ties must preserve the original second order.
  const std::size_t n = 60000;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = {static_cast<std::uint32_t>(parlib::hash64(i) % 16),
            static_cast<std::uint32_t>(i)};
  }
  parlib::sort_inplace(v, [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i - 1].first == v[i].first) {
      ASSERT_LT(v[i - 1].second, v[i].second) << "instability at " << i;
    } else {
      ASSERT_LT(v[i - 1].first, v[i].first);
    }
  }
}

TEST(Sort, IntegerSortIsStable) {
  const std::size_t n = 60000;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = {static_cast<std::uint32_t>(parlib::hash64(i) % 7),
            static_cast<std::uint32_t>(i)};
  }
  parlib::integer_sort_inplace(v, [](const auto& p) { return p.first; });
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i - 1].first == v[i].first) {
      ASSERT_LT(v[i - 1].second, v[i].second);
    } else {
      ASSERT_LT(v[i - 1].first, v[i].first);
    }
  }
}

TEST(Sort, IntegerSort64BitKeys) {
  const std::size_t n = 100000;
  auto v = parlib::tabulate<std::uint64_t>(
      n, [](std::size_t i) { return parlib::hash64(i); });
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parlib::integer_sort_inplace(v, [](std::uint64_t x) { return x; }, 64);
  EXPECT_EQ(v, expected);
}

TEST(Sort, IntegerSortAllEqualKeys) {
  std::vector<std::uint32_t> v(10000, 42);
  parlib::integer_sort_inplace(v, [](std::uint32_t x) { return x; });
  for (auto x : v) ASSERT_EQ(x, 42u);
}

TEST(Sort, CountingSortBucketsAndOffsets) {
  const std::size_t n = 100000, buckets = 17;
  auto v = parlib::tabulate<std::uint32_t>(n, [](std::size_t i) {
    return static_cast<std::uint32_t>(parlib::hash64(i));
  });
  std::vector<std::size_t> expected_counts(buckets, 0);
  for (auto x : v) expected_counts[x % buckets]++;
  auto starts = parlib::counting_sort_inplace(
      v, [&](std::uint32_t x) { return x % buckets; }, buckets);
  ASSERT_EQ(starts.size(), buckets + 1);
  EXPECT_EQ(starts[0], 0u);
  EXPECT_EQ(starts[buckets], n);
  for (std::size_t b = 0; b < buckets; ++b) {
    ASSERT_EQ(starts[b + 1] - starts[b], expected_counts[b]) << b;
    for (std::size_t i = starts[b]; i < starts[b + 1]; ++i) {
      ASSERT_EQ(v[i] % buckets, b);
    }
  }
}

TEST(Sort, SortedHelperReturnsSortedCopy) {
  std::vector<int> v = {5, 3, 8, 1};
  auto s = parlib::sorted(v);
  EXPECT_EQ(s, (std::vector<int>{1, 3, 5, 8}));
  EXPECT_EQ(v, (std::vector<int>{5, 3, 8, 1}));  // original untouched
}

TEST(Sort, CustomComparatorDescending) {
  auto v = parlib::tabulate<std::uint32_t>(
      30000, [](std::size_t i) { return parlib::hash32(static_cast<std::uint32_t>(i)); });
  parlib::sort_inplace(v, std::greater<std::uint32_t>{});
  for (std::size_t i = 1; i < v.size(); ++i) ASSERT_GE(v[i - 1], v[i]);
}

TEST(Sort, ApproximateKthSmallestIsInRightNeighborhood) {
  const std::size_t n = 200000;
  auto v = parlib::iota<std::uint64_t>(n);  // ranks are transparent
  // Shuffle deterministically.
  for (std::size_t i = n - 1; i > 0; --i) {
    std::swap(v[i], v[parlib::hash64(i) % (i + 1)]);
  }
  const std::size_t k = n / 3;
  const auto pivot =
      parlib::approximate_kth_smallest(v, k, parlib::random(7));
  // The pivot's true rank should be within a few percent of k.
  EXPECT_GT(pivot, static_cast<std::uint64_t>(k * 0.8));
  EXPECT_LT(pivot, static_cast<std::uint64_t>(k * 1.2));
}

}  // namespace
