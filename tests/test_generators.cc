// Tests for the synthetic graph generators (DESIGN.md §1 substitutions).
#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace {

using gbbs::vertex_id;

TEST(Generators, RmatDeterministicInSeed) {
  auto a = gbbs::rmat_edges(10, 5000, 42);
  auto b = gbbs::rmat_edges(10, 5000, 42);
  auto c = gbbs::rmat_edges(10, 5000, 43);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].u, b[i].u);
    ASSERT_EQ(a[i].v, b[i].v);
  }
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].u != c[i].u || a[i].v != c[i].v) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generators, RmatVerticesInRange) {
  const std::uint32_t scale = 8;
  auto edges = gbbs::rmat_edges(scale, 10000, 7);
  for (const auto& e : edges) {
    ASSERT_LT(e.u, 1u << scale);
    ASSERT_LT(e.v, 1u << scale);
  }
}

TEST(Generators, RmatIsSkewed) {
  // The max degree of an R-MAT graph must far exceed the average degree —
  // this skew is what the paper's histogram optimization is about.
  auto g = gbbs::rmat_symmetric(12, 40000, 3);
  vertex_id max_deg = 0;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.out_degree(v));
  }
  const double avg = static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_GT(max_deg, 10 * avg);
}

TEST(Generators, ErdosRenyiIsNotSkewed) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      4096, gbbs::erdos_renyi_edges(4096, 40000, 5));
  vertex_id max_deg = 0;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.out_degree(v));
  }
  const double avg = static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_LT(max_deg, 5 * avg + 10);
}

TEST(Generators, Torus3dDegreesAreSix) {
  auto g = gbbs::torus3d_symmetric(5);
  EXPECT_EQ(g.num_vertices(), 125u);
  EXPECT_EQ(g.num_edges(), 125u * 6);
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(g.out_degree(v), 6u) << v;
  }
}

TEST(Generators, Torus3dSide2HasNoDuplicates) {
  // side=2 wraps both directions onto the same neighbor; the builder must
  // dedupe, giving degree 3.
  auto g = gbbs::torus3d_symmetric(2);
  EXPECT_EQ(g.num_vertices(), 8u);
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(g.out_degree(v), 3u);
  }
}

TEST(Generators, Grid2dStructure) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      12, gbbs::grid2d_edges(3, 4));
  // Corner vertices have degree 2, edge vertices 3, interior 4.
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 3u);
  EXPECT_EQ(g.out_degree(5), 4u);
}

TEST(Generators, PathCycleStarCompleteTreeShapes) {
  auto path = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      5, gbbs::path_edges(5));
  EXPECT_EQ(path.num_edges(), 8u);
  EXPECT_EQ(path.out_degree(0), 1u);
  EXPECT_EQ(path.out_degree(2), 2u);

  auto cycle = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      5, gbbs::cycle_edges(5));
  for (vertex_id v = 0; v < 5; ++v) ASSERT_EQ(cycle.out_degree(v), 2u);

  auto star = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      6, gbbs::star_edges(6));
  EXPECT_EQ(star.out_degree(0), 5u);
  for (vertex_id v = 1; v < 6; ++v) ASSERT_EQ(star.out_degree(v), 1u);

  auto complete = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      6, gbbs::complete_edges(6));
  for (vertex_id v = 0; v < 6; ++v) ASSERT_EQ(complete.out_degree(v), 5u);

  auto tree = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      7, gbbs::binary_tree_edges(7));
  EXPECT_EQ(tree.out_degree(0), 2u);
  EXPECT_EQ(tree.out_degree(1), 3u);
  EXPECT_EQ(tree.out_degree(3), 1u);
}

TEST(Generators, BipartiteCoverEdgesRespectSides) {
  const vertex_id sets = 50, elements = 200;
  auto edges = gbbs::bipartite_cover_edges(sets, elements, 10, 9);
  for (const auto& e : edges) {
    ASSERT_LT(e.u, sets);
    ASSERT_GE(e.v, sets);
    ASSERT_LT(e.v, sets + elements);
  }
}

TEST(Generators, WeightsInRangeAndSymmetricConsistent) {
  const vertex_id n = 1 << 10;
  auto edges = gbbs::rmat_edges(10, 8000, 21);
  const auto max_w = gbbs::weight_range(n);
  auto weighted = gbbs::with_random_weights(edges, max_w, 5);
  for (const auto& e : weighted) {
    ASSERT_GE(e.w, 1u);
    ASSERT_LE(e.w, max_w);
  }
  // Symmetric build: weight of (u,v) equals weight of (v,u).
  auto g = gbbs::build_symmetric_graph<std::uint32_t>(n, weighted);
  for (vertex_id v = 0; v < n; v += 17) {
    auto nghs = g.out_neighbors(v);
    for (std::size_t j = 0; j < nghs.size(); ++j) {
      const vertex_id u = nghs[j];
      const auto w_vu = g.out_weight(v, j);
      // find v in u's list
      auto unghs = g.out_neighbors(u);
      const auto it = std::lower_bound(unghs.begin(), unghs.end(), v);
      ASSERT_NE(it, unghs.end());
      const auto w_uv =
          g.out_weight(u, static_cast<std::size_t>(it - unghs.begin()));
      ASSERT_EQ(w_vu, w_uv);
    }
  }
}

TEST(Generators, WeightRangeIsFloorLog2) {
  EXPECT_EQ(gbbs::weight_range(2), 1u);
  EXPECT_EQ(gbbs::weight_range(1024), 10u);
  EXPECT_EQ(gbbs::weight_range(1 << 20), 20u);
}

}  // namespace
