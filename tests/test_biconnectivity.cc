// Biconnectivity vs the Hopcroft-Tarjan oracle: the edge partition into
// biconnected components must match exactly.
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/biconnectivity.h"
#include "seq/reference.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

std::uint64_t edge_key(vertex_id a, vertex_id b) {
  return (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
}

template <typename Graph>
void check_against_oracle(const Graph& g) {
  auto res = gbbs::biconnectivity(g);
  auto oracle = gbbs::seq::biconnectivity_edge_labels(g);
  std::unordered_map<std::uint64_t, vertex_id> oracle_label(oracle.begin(),
                                                            oracle.end());
  // Partition equality via bijection between label spaces.
  std::unordered_map<vertex_id, vertex_id> ours2oracle, oracle2ours;
  std::size_t edges_checked = 0;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    for (vertex_id u : g.out_neighbors(v)) {
      if (u < v) continue;
      const auto it = oracle_label.find(edge_key(v, u));
      ASSERT_NE(it, oracle_label.end()) << v << "," << u;
      const vertex_id mine = res.edge_label(v, u);
      const vertex_id theirs = it->second;
      auto [i1, ins1] = ours2oracle.try_emplace(mine, theirs);
      ASSERT_EQ(i1->second, theirs)
          << "our label " << mine << " spans oracle comps at (" << v << ","
          << u << ")";
      auto [i2, ins2] = oracle2ours.try_emplace(theirs, mine);
      ASSERT_EQ(i2->second, mine)
          << "oracle comp " << theirs << " split at (" << v << "," << u
          << ")";
      ++edges_checked;
    }
  }
  ASSERT_EQ(edges_checked, g.num_edges() / 2);
}

class BiconnSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, BiconnSuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(BiconnSuite, EdgePartitionMatchesHopcroftTarjan) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  check_against_oracle(g);
}

TEST(Biconnectivity, TriangleWithPendant) {
  // Triangle {0,1,2} + pendant 3 on 0: two biconnected components.
  std::vector<gbbs::edge<gbbs::empty_weight>> edges = {
      {0, 1, {}}, {1, 2, {}}, {0, 2, {}}, {0, 3, {}}};
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(4, edges);
  auto res = gbbs::biconnectivity(g);
  EXPECT_EQ(res.edge_label(0, 1), res.edge_label(1, 2));
  EXPECT_EQ(res.edge_label(0, 1), res.edge_label(0, 2));
  EXPECT_NE(res.edge_label(0, 1), res.edge_label(0, 3));
  check_against_oracle(g);
}

TEST(Biconnectivity, PathIsAllBridges) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      20, gbbs::path_edges(20));
  auto res = gbbs::biconnectivity(g);
  // Every edge is its own component: all labels distinct.
  std::set<vertex_id> labels;
  for (vertex_id v = 0; v + 1 < 20; ++v) {
    labels.insert(res.edge_label(v, v + 1));
  }
  EXPECT_EQ(labels.size(), 19u);
  EXPECT_EQ(res.num_critical_edges, 19u);
}

TEST(Biconnectivity, CycleIsOneComponent) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      30, gbbs::cycle_edges(30));
  auto res = gbbs::biconnectivity(g);
  std::set<vertex_id> labels;
  for (vertex_id v = 0; v < 30; ++v) {
    labels.insert(res.edge_label(v, (v + 1) % 30));
  }
  EXPECT_EQ(labels.size(), 1u);
}

TEST(Biconnectivity, BowtieSharesArticulationPoint) {
  // Two triangles sharing vertex 0.
  std::vector<gbbs::edge<gbbs::empty_weight>> edges = {
      {0, 1, {}}, {1, 2, {}}, {2, 0, {}},
      {0, 3, {}}, {3, 4, {}}, {4, 0, {}}};
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(5, edges);
  auto res = gbbs::biconnectivity(g);
  EXPECT_EQ(res.edge_label(0, 1), res.edge_label(1, 2));
  EXPECT_EQ(res.edge_label(0, 3), res.edge_label(3, 4));
  EXPECT_NE(res.edge_label(0, 1), res.edge_label(0, 3));
  check_against_oracle(g);
}

TEST(Biconnectivity, CompleteGraphIsOneComponent) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      20, gbbs::complete_edges(20));
  auto res = gbbs::biconnectivity(g);
  // Note: root-child tree edges always satisfy the critical-edge condition
  // (the subtree trivially stays inside the root's subtree); the deeper-
  // endpoint labeling reattaches them, so the partition is still one
  // component even though num_critical_edges > 0.
  EXPECT_LE(res.num_critical_edges, g.num_vertices());
  check_against_oracle(g);
}

TEST(Biconnectivity, DisconnectedGraphHandled) {
  auto g = gbbs::testing::two_components(50);
  check_against_oracle(g);
}

}  // namespace
