// Low-diameter decomposition invariants: total coverage, center membership,
// cluster connectivity, the beta*m cut-edge bound (statistically), and the
// O(log n / beta) cluster radius bound.
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/bfs.h"
#include "algorithms/ldd.h"
#include "seq/reference.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

class LddSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, LddSuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(LddSuite, EveryVertexClusteredAndCentersSelfOwn) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto clusters = gbbs::ldd(g, 0.2);
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NE(clusters[v], gbbs::kNoVertex) << v;
    // The center of v's cluster belongs to its own cluster.
    ASSERT_EQ(clusters[clusters[v]], clusters[v]) << v;
  }
}

TEST_P(LddSuite, ClustersAreConnected) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  if (g.num_vertices() == 0) return;
  auto clusters = gbbs::ldd(g, 0.2);
  // BFS from each center restricted to its cluster must reach all members.
  std::unordered_map<vertex_id, std::vector<vertex_id>> members;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    members[clusters[v]].push_back(v);
  }
  for (const auto& [center, vs] : members) {
    std::vector<std::uint8_t> seen(g.num_vertices(), 0);
    std::vector<vertex_id> stack{center};
    seen[center] = 1;
    std::size_t reached = 1;
    while (!stack.empty()) {
      const vertex_id v = stack.back();
      stack.pop_back();
      for (vertex_id u : g.out_neighbors(v)) {
        if (!seen[u] && clusters[u] == center) {
          seen[u] = 1;
          ++reached;
          stack.push_back(u);
        }
      }
    }
    ASSERT_EQ(reached, vs.size()) << "cluster of center " << center;
  }
}

TEST(Ldd, CutEdgeFractionNearBeta) {
  // Expected cut edges <= ~2*beta*m for the tie-broken variant; allow 3x
  // slack for variance on a single draw.
  auto g = gbbs::testing::make_symmetric("rmat");
  for (double beta : {0.1, 0.2, 0.4}) {
    auto clusters = gbbs::ldd(g, beta, parlib::random(99));
    const auto cut = gbbs::num_cut_edges(g, clusters);
    EXPECT_LT(static_cast<double>(cut), 3.0 * beta * g.num_edges())
        << "beta=" << beta;
  }
}

TEST(Ldd, LargerBetaMakesMoreClusters) {
  auto g = gbbs::testing::make_symmetric("torus");
  auto count_clusters = [&](double beta) {
    auto clusters = gbbs::ldd(g, beta, parlib::random(3));
    std::vector<std::uint8_t> used(g.num_vertices(), 0);
    for (auto c : clusters) used[c] = 1;
    std::size_t k = 0;
    for (auto u : used) k += u;
    return k;
  };
  EXPECT_LT(count_clusters(0.05), count_clusters(0.8));
}

TEST(Ldd, ClusterRadiusBounded) {
  // Each vertex's hop distance to its center is O(log n / beta); check an
  // explicit generous constant.
  auto g = gbbs::testing::make_symmetric("torus");
  const double beta = 0.2;
  auto clusters = gbbs::ldd(g, beta, parlib::random(17));
  std::unordered_map<vertex_id, std::vector<vertex_id>> members;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    members[clusters[v]].push_back(v);
  }
  const double bound = 4.0 * std::log(static_cast<double>(g.num_vertices())) /
                       beta;
  for (const auto& [center, vs] : members) {
    auto dist = gbbs::seq::bfs(g, center);
    for (vertex_id v : vs) {
      // Distance within the graph lower-bounds within-cluster distance but
      // the MPX guarantee is about graph distance to the center.
      ASSERT_LT(dist[v], bound) << "center " << center << " v " << v;
    }
  }
}

TEST(Ldd, ClustersRespectComponents) {
  auto g = gbbs::testing::two_components(200);
  auto clusters = gbbs::ldd(g, 0.2);
  auto cc = gbbs::seq::connectivity(g);
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(cc[clusters[v]], cc[v]) << v;
  }
}

TEST(Ldd, DeterministicForFixedSeed) {
  auto g = gbbs::testing::make_symmetric("erdos_renyi");
  auto a = gbbs::ldd(g, 0.2, parlib::random(123));
  auto b = gbbs::ldd(g, 0.2, parlib::random(123));
  EXPECT_EQ(a, b);
}

}  // namespace
