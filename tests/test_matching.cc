// Maximal matching: validity (disjoint + maximal) across the suite, seeds,
// and filter-step counts.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/maximal_matching.h"
#include "seq/reference.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

class MatchingSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, MatchingSuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(MatchingSuite, IsValidMaximalMatching) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto matching = gbbs::maximal_matching(g);
  EXPECT_TRUE(gbbs::seq::is_valid_maximal_matching(g, matching))
      << GetParam();
}

TEST_P(MatchingSuite, SeedsVaryButStayValid) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  for (std::uint64_t seed : {2ull, 77ull}) {
    auto matching = gbbs::maximal_matching(g, parlib::random(seed));
    ASSERT_TRUE(gbbs::seq::is_valid_maximal_matching(g, matching)) << seed;
  }
}

TEST_P(MatchingSuite, FilterStepCountsAgree) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto a = gbbs::maximal_matching(g, parlib::random(5), 0);  // no filtering
  auto b = gbbs::maximal_matching(g, parlib::random(5), 4);
  ASSERT_TRUE(gbbs::seq::is_valid_maximal_matching(g, a));
  ASSERT_TRUE(gbbs::seq::is_valid_maximal_matching(g, b));
  // Same priorities => same greedy matching regardless of filtering.
  EXPECT_EQ(a.size(), b.size());
}

TEST(Matching, PathAlternates) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      50, gbbs::path_edges(50));
  auto matching = gbbs::maximal_matching(g);
  ASSERT_TRUE(gbbs::seq::is_valid_maximal_matching(g, matching));
  // A maximal matching on a 50-path has between 17 and 25 edges.
  EXPECT_GE(matching.size(), 17u);
  EXPECT_LE(matching.size(), 25u);
}

TEST(Matching, CompleteGraphPairsEveryone) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      30, gbbs::complete_edges(30));
  auto matching = gbbs::maximal_matching(g);
  EXPECT_EQ(matching.size(), 15u);
}

TEST(Matching, StarMatchesExactlyOneEdge) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      64, gbbs::star_edges(64));
  auto matching = gbbs::maximal_matching(g);
  EXPECT_EQ(matching.size(), 1u);
  EXPECT_TRUE(matching[0].u == 0 || matching[0].v == 0);
}

TEST(Matching, EmptyGraphEmptyMatching) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(8, {});
  EXPECT_TRUE(gbbs::maximal_matching(g).empty());
}

TEST(Matching, GreedyOnSamePrioritiesIsDeterministic) {
  auto g = gbbs::testing::make_symmetric("rmat");
  auto a = gbbs::maximal_matching(g, parlib::random(11));
  auto b = gbbs::maximal_matching(g, parlib::random(11));
  ASSERT_EQ(a.size(), b.size());
  std::set<std::pair<vertex_id, vertex_id>> sa, sb;
  for (const auto& e : a) sa.insert({e.u, e.v});
  for (const auto& e : b) sb.insert({e.u, e.v});
  EXPECT_EQ(sa, sb);
}

}  // namespace
