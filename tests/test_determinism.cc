// Determinism under parallel execution: algorithms whose output is a pure
// function of (graph, seed) must produce bit-identical results across
// repeated runs — any divergence indicates a scheduling-dependent data race
// (Blelloch et al., "Internally deterministic algorithms can be fast").
// These tests double as cheap race detectors for the whole stack.
#include <string>

#include <gtest/gtest.h>

#include "algorithms/bfs.h"
#include "algorithms/betweenness.h"
#include "algorithms/coloring.h"
#include "algorithms/connectivity.h"
#include "algorithms/kcore.h"
#include "algorithms/maximal_matching.h"
#include "algorithms/mis.h"
#include "algorithms/msf.h"
#include "algorithms/scc.h"
#include "algorithms/wbfs.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

class DeterminismSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, DeterminismSuite,
    ::testing::ValuesIn(std::vector<std::string>{"rmat", "erdos_renyi",
                                                 "torus", "two_cc"}));

TEST_P(DeterminismSuite, BfsDistances) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  if (g.num_vertices() == 0) return;
  auto a = gbbs::bfs(g, 1);
  for (int rep = 0; rep < 3; ++rep) {
    ASSERT_EQ(gbbs::bfs(g, 1), a) << rep;
  }
}

TEST_P(DeterminismSuite, WbfsDistances) {
  auto g = gbbs::testing::make_symmetric_weighted(GetParam());
  auto a = gbbs::wbfs(g, 2);
  for (int rep = 0; rep < 3; ++rep) {
    ASSERT_EQ(gbbs::wbfs(g, 2).dist, a.dist) << rep;
  }
}

TEST_P(DeterminismSuite, BetweennessScores) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto a = gbbs::betweenness(g, 0);
  for (int rep = 0; rep < 3; ++rep) {
    auto b = gbbs::betweenness(g, 0);
    for (std::size_t v = 0; v < a.size(); ++v) {
      // Unweighted BC sums are dyadic rationals accumulated in different
      // orders; on these graphs the sums are exact in double.
      ASSERT_DOUBLE_EQ(a[v], b[v]) << rep << " v=" << v;
    }
  }
}

TEST_P(DeterminismSuite, MisSet) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto a = gbbs::mis_rootset(g, parlib::random(11));
  for (int rep = 0; rep < 3; ++rep) {
    ASSERT_EQ(gbbs::mis_rootset(g, parlib::random(11)), a) << rep;
  }
}

TEST_P(DeterminismSuite, ColoringSyncAndAsync) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto a = gbbs::color_graph(g, gbbs::coloring_heuristic::llf,
                             parlib::random(7));
  for (int rep = 0; rep < 2; ++rep) {
    ASSERT_EQ(gbbs::color_graph(g, gbbs::coloring_heuristic::llf,
                                parlib::random(7)),
              a);
    ASSERT_EQ(gbbs::color_graph_async(g, gbbs::coloring_heuristic::llf,
                                      parlib::random(7)),
              a);
  }
}

TEST_P(DeterminismSuite, MatchingEdgeSet) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto canon = [](std::vector<gbbs::edge<gbbs::empty_weight>> m) {
    std::vector<std::pair<vertex_id, vertex_id>> out;
    for (const auto& e : m) out.push_back({e.u, e.v});
    std::sort(out.begin(), out.end());
    return out;
  };
  auto a = canon(gbbs::maximal_matching(g, parlib::random(13)));
  for (int rep = 0; rep < 3; ++rep) {
    ASSERT_EQ(canon(gbbs::maximal_matching(g, parlib::random(13))), a);
  }
}

TEST_P(DeterminismSuite, CorenessValues) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto a = gbbs::kcore(g);
  for (int rep = 0; rep < 3; ++rep) {
    auto b = gbbs::kcore(g);
    ASSERT_EQ(b.coreness, a.coreness) << rep;
    ASSERT_EQ(b.num_rounds, a.num_rounds) << rep;
  }
}

TEST_P(DeterminismSuite, MsfWeightAndEdgeSet) {
  auto g = gbbs::testing::make_symmetric_weighted(GetParam());
  auto canon = [](const gbbs::msf_result& r) {
    std::vector<std::pair<vertex_id, vertex_id>> out;
    for (const auto& e : r.forest) {
      out.push_back({std::min(e.u, e.v), std::max(e.u, e.v)});
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  auto a = gbbs::msf(g);
  auto ca = canon(a);
  for (int rep = 0; rep < 3; ++rep) {
    auto b = gbbs::msf(g);
    ASSERT_EQ(b.total_weight, a.total_weight);
    ASSERT_EQ(canon(b), ca) << rep;  // unique given index tie-breaking
  }
}

TEST_P(DeterminismSuite, ConnectivityPartition) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto a = gbbs::connectivity(g, 0.2, parlib::random(3));
  for (int rep = 0; rep < 3; ++rep) {
    // LDD tie-breaking is a CAS race, so the *labels* may differ between
    // runs; the partition (same/different pairs) must not.
    auto b = gbbs::connectivity(g, 0.2, parlib::random(3));
    for (std::size_t v = 1; v < a.size(); v += 3) {
      ASSERT_EQ(a[v] == a[v - 1], b[v] == b[v - 1]) << rep << " " << v;
    }
  }
}

TEST(Determinism, SccPartitionAcrossRuns) {
  auto g = gbbs::testing::make_directed("rmat_dir");
  auto a = gbbs::scc(g, {.rng = parlib::random(9)});
  for (int rep = 0; rep < 2; ++rep) {
    auto b = gbbs::scc(g, {.rng = parlib::random(9)});
    ASSERT_EQ(b.labels, a.labels) << rep;  // labels are min-center ids
  }
}

}  // namespace
