// Tests for vertexSubset, vertexMap, vertexFilter, vertex_subset_data.
#include <algorithm>
#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "graph/vertex_subset.h"

namespace {

using gbbs::vertex_id;
using gbbs::vertex_subset;

TEST(VertexSubset, EmptyAndSingleton) {
  vertex_subset empty(10);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);

  vertex_subset single(10, vertex_id{3});
  EXPECT_EQ(single.size(), 1u);
  EXPECT_TRUE(single.contains(3));
  EXPECT_FALSE(single.contains(4));
}

TEST(VertexSubset, SparseToDenseAndBack) {
  vertex_subset vs(100, std::vector<vertex_id>{5, 10, 99});
  EXPECT_FALSE(vs.is_dense());
  vs.to_dense();
  EXPECT_TRUE(vs.is_dense());
  EXPECT_EQ(vs.size(), 3u);
  EXPECT_TRUE(vs.contains(5));
  EXPECT_TRUE(vs.contains(99));
  EXPECT_FALSE(vs.contains(6));
  vs.to_sparse();
  EXPECT_FALSE(vs.is_dense());
  auto ids = vs.sparse();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<vertex_id>{5, 10, 99}));
}

TEST(VertexSubset, DenseConstructionCountsSize) {
  std::vector<std::uint8_t> flags(50, 0);
  flags[1] = flags[7] = flags[49] = 1;
  vertex_subset vs(50, std::move(flags));
  EXPECT_TRUE(vs.is_dense());
  EXPECT_EQ(vs.size(), 3u);
}

TEST(VertexSubset, ForEachVisitsAllMembersOnce) {
  vertex_subset vs(1000, std::vector<vertex_id>{1, 2, 3, 500, 999});
  std::atomic<int> count{0};
  std::vector<std::atomic<int>> hits(1000);
  vs.for_each([&](vertex_id v) {
    count++;
    hits[v]++;
  });
  EXPECT_EQ(count.load(), 5);
  EXPECT_EQ(hits[500].load(), 1);
  EXPECT_EQ(hits[501].load(), 0);

  vs.to_dense();
  std::atomic<int> count2{0};
  vs.for_each([&](vertex_id) { count2++; });
  EXPECT_EQ(count2.load(), 5);
}

TEST(VertexSubset, VertexFilterSparseAndDenseAgree) {
  std::vector<vertex_id> ids;
  for (vertex_id v = 0; v < 200; v += 3) ids.push_back(v);
  vertex_subset sparse(200, ids);
  auto f1 = gbbs::vertex_filter(sparse, [](vertex_id v) { return v % 2 == 0; });

  vertex_subset dense(200, ids);
  dense.to_dense();
  auto f2 = gbbs::vertex_filter(dense, [](vertex_id v) { return v % 2 == 0; });

  auto s1 = f1.sparse();
  auto s2 = f2.sparse();
  std::sort(s1.begin(), s1.end());
  std::sort(s2.begin(), s2.end());
  EXPECT_EQ(s1, s2);
  for (vertex_id v : s1) {
    EXPECT_EQ(v % 6, 0u);  // multiples of 3 that are even
  }
}

TEST(VertexSubsetData, EntriesAndConversion) {
  std::vector<std::pair<vertex_id, int>> elts = {{3, 30}, {7, 70}};
  gbbs::vertex_subset_data<int> vsd(10, elts);
  EXPECT_EQ(vsd.size(), 2u);
  auto vs = vsd.to_vertex_subset();
  EXPECT_EQ(vs.size(), 2u);
  EXPECT_TRUE(vs.contains(3));
  EXPECT_TRUE(vs.contains(7));
}

TEST(VertexSubset, LargeDenseRoundTrip) {
  const vertex_id n = 100000;
  std::vector<std::uint8_t> flags(n, 0);
  std::size_t expected = 0;
  for (vertex_id v = 0; v < n; ++v) {
    if (v % 7 == 0) {
      flags[v] = 1;
      ++expected;
    }
  }
  vertex_subset vs(n, std::move(flags));
  EXPECT_EQ(vs.size(), expected);
  vs.to_sparse();
  EXPECT_EQ(vs.size(), expected);
  const auto& ids = vs.sparse();
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

}  // namespace
