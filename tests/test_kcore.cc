// k-core vs the Matula-Beck oracle; histogram and fetch-and-add variants
// must agree exactly (Table 6 compares only their performance).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/kcore.h"
#include "graph/compression/compressed_graph.h"
#include "seq/reference.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

class KcoreSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, KcoreSuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(KcoreSuite, HistogramMatchesMatulaBeck) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto got = gbbs::kcore(g, gbbs::kcore_variant::histogram);
  auto expected = gbbs::seq::coreness(g);
  ASSERT_EQ(got.coreness.size(), expected.size());
  for (std::size_t v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(got.coreness[v], expected[v]) << GetParam() << " v=" << v;
  }
}

TEST_P(KcoreSuite, FetchAndAddMatchesHistogram) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto a = gbbs::kcore(g, gbbs::kcore_variant::histogram);
  auto b = gbbs::kcore(g, gbbs::kcore_variant::fetch_and_add);
  EXPECT_EQ(a.coreness, b.coreness);
  EXPECT_EQ(a.max_core, b.max_core);
}

TEST(Kcore, CompleteGraphCore) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      20, gbbs::complete_edges(20));
  auto res = gbbs::kcore(g);
  EXPECT_EQ(res.max_core, 19u);
  for (auto c : res.coreness) ASSERT_EQ(c, 19u);
}

TEST(Kcore, TorusIsUniform) {
  // The paper notes 3D-Torus peels in one round (all vertices degree 6).
  auto g = gbbs::torus3d_symmetric(6);
  auto res = gbbs::kcore(g);
  EXPECT_EQ(res.max_core, 6u);
  EXPECT_EQ(res.num_rounds, 1u);
  for (auto c : res.coreness) ASSERT_EQ(c, 6u);
}

TEST(Kcore, PathCoreIsOne) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      64, gbbs::path_edges(64));
  auto res = gbbs::kcore(g);
  EXPECT_EQ(res.max_core, 1u);
}

TEST(Kcore, TriangleWithTailPeelsInOrder) {
  // Tail vertices peel at 1, triangle at 2.
  std::vector<gbbs::edge<gbbs::empty_weight>> edges = {
      {0, 1, {}}, {1, 2, {}}, {0, 2, {}}, {2, 3, {}}, {3, 4, {}}};
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(5, edges);
  auto res = gbbs::kcore(g);
  EXPECT_EQ(res.coreness[0], 2u);
  EXPECT_EQ(res.coreness[1], 2u);
  EXPECT_EQ(res.coreness[2], 2u);
  EXPECT_EQ(res.coreness[3], 1u);
  EXPECT_EQ(res.coreness[4], 1u);
}

TEST(Kcore, CompressedMatchesUncompressed) {
  auto g = gbbs::testing::make_symmetric("rmat");
  auto cg = gbbs::compressed_graph<gbbs::empty_weight>::compress(g);
  auto a = gbbs::kcore(g);
  auto b = gbbs::kcore(cg);
  EXPECT_EQ(a.coreness, b.coreness);
}

TEST(Kcore, LargeSkewedGraphMatchesOracle) {
  // Regression for the bucket-overflow duplicate bug: needs a degree range
  // far wider than the 128-bucket window so vertices bounce through the
  // overflow repeatedly (first seen at R-MAT scale 16 in bench_stats).
  auto g = gbbs::rmat_symmetric(13, std::size_t{16} << 13, 107);
  auto got = gbbs::kcore(g);
  auto expected = gbbs::seq::coreness(g);
  gbbs::vertex_id refmax = 0;
  for (std::size_t v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(got.coreness[v], expected[v]) << v;
    refmax = std::max(refmax, expected[v]);
  }
  EXPECT_EQ(got.max_core, refmax);
}

TEST(Kcore, RhoCountsPeelingRounds) {
  auto g = gbbs::testing::make_symmetric("rmat");
  auto res = gbbs::kcore(g);
  EXPECT_GT(res.num_rounds, 1u);
  EXPECT_LT(res.num_rounds, g.num_vertices());
}

}  // namespace
