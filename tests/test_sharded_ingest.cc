// Tests for the multi-writer sharded ingest path (serve/sharded_ingest.h):
//   * split_batch's double-booking invariant — every update lands on
//     owner(u)'s shard, cross-shard edges appear on both endpoint shards,
//     and nothing is lost or duplicated within a shard;
//   * cross-shard consistency — randomized mixed insert/erase schedules
//     over 1/2/4 shards produce, at every flushed version, exactly the
//     same graph, component partition, and point-read answers as the
//     single-writer snapshot_manager fed the identical update stream;
//   * the composite version clock under a straggling shard — with the
//     ingest.shard.apply.delay failpoint pinning one of two shards, a
//     publish() while the straggler lags must re-publish the old clock
//     value (never a composite containing a batch some shard has not
//     applied), and flush() must then surface everything;
//   * ingest vs. concurrent readers (the TSan target): shard workers
//     applying and refreshing their seqlock overlays while reader threads
//     pin composite versions, traverse them, and route point reads
//     through a query_engine with the shard router.
#include <atomic>
#include <cstdint>
#include <future>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/connectivity.h"
#include "dynamic/shard_partition.h"
#include "dynamic/update_batch.h"
#include "graph/generators.h"
#include "parlib/random.h"
#include "robust/failpoint.h"
#include "serve/query.h"
#include "serve/query_engine.h"
#include "serve/sharded_ingest.h"
#include "serve/snapshot_manager.h"

namespace {

using gbbs::empty_weight;
using gbbs::vertex_id;
using gbbs::dynamic::shard_partition;
using gbbs::dynamic::update_op;
using gbbs::serve::query_engine;
using gbbs::serve::query_kind;
using gbbs::serve::query_result;
using gbbs::serve::sharded_snapshot_manager;
using gbbs::serve::snapshot_manager;

using uw_update = gbbs::dynamic::update<empty_weight>;

// A deterministic mixed schedule: per batch, random inserts over n
// vertices plus (once past the warmup batches) erases sampled from edges
// inserted earlier — the same raw vectors go to every manager under test.
std::vector<std::vector<uw_update>> make_schedule(vertex_id n,
                                                  std::size_t num_batches,
                                                  std::size_t batch_size,
                                                  std::uint64_t seed) {
  parlib::random rng(seed);
  std::vector<std::vector<uw_update>> schedule;
  std::vector<std::pair<vertex_id, vertex_id>> inserted;
  std::size_t k = 0;
  for (std::size_t b = 0; b < num_batches; ++b) {
    std::vector<uw_update> raw;
    for (std::size_t i = 0; i < batch_size; ++i, ++k) {
      const auto u = static_cast<vertex_id>(rng.ith_rand(2 * k) % n);
      const auto v = static_cast<vertex_id>(rng.ith_rand(2 * k + 1) % n);
      if (u == v) continue;
      raw.push_back({u, v, {}, update_op::insert});
      inserted.emplace_back(u, v);
    }
    if (b >= 2 && !inserted.empty()) {
      for (std::size_t i = 0; i < batch_size / 4; ++i, ++k) {
        const auto& e = inserted[rng.ith_rand(2 * k) % inserted.size()];
        raw.push_back({e.first, e.second, {}, update_op::erase});
      }
    }
    schedule.push_back(std::move(raw));
  }
  return schedule;
}

void expect_same_csr(const gbbs::graph<empty_weight>& a,
                     const gbbs::graph<empty_weight>& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (vertex_id v = 0; v < a.num_vertices(); ++v) {
    auto na = a.out_neighbors(v);
    auto nb = b.out_neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "degree of " << v;
    for (std::size_t j = 0; j < na.size(); ++j) {
      ASSERT_EQ(na[j], nb[j]) << "neighbor " << j << " of " << v;
    }
  }
}

// ---- split_batch ----------------------------------------------------------

TEST(ShardPartition, SplitBatchDoubleBooking) {
  const vertex_id n = 64;
  parlib::random rng(7);
  std::vector<uw_update> raw;
  for (std::size_t i = 0; i < 200; ++i) {
    const auto u = static_cast<vertex_id>(rng.ith_rand(2 * i) % n);
    const auto v = static_cast<vertex_id>(rng.ith_rand(2 * i + 1) % n);
    if (u != v) raw.push_back({u, v, {}, update_op::insert});
  }
  auto batch = gbbs::dynamic::make_batch(std::move(raw), /*mirror=*/true);
  shard_partition part(4, /*block_bits=*/2);
  auto subs = gbbs::dynamic::split_batch(batch, part);
  ASSERT_EQ(subs.size(), 4u);

  std::size_t total = 0;
  std::set<std::pair<vertex_id, vertex_id>> seen;
  for (std::size_t s = 0; s < subs.size(); ++s) {
    EXPECT_EQ(subs[s].max_vertex, batch.max_vertex);
    for (const auto& up : subs[s].updates) {
      // Ownership: every update on shard s belongs to it.
      EXPECT_EQ(part.owner(up.u), s);
      seen.emplace(up.u, up.v);
    }
    total += subs[s].updates.size();
  }
  // Nothing lost, nothing duplicated: the shards partition the batch.
  EXPECT_EQ(total, batch.updates.size());
  EXPECT_EQ(seen.size(), batch.updates.size());
  // Double-booking: the mirrored batch carries (u, v) and (v, u), so each
  // undirected edge is present on owner(u)'s and owner(v)'s shard.
  for (const auto& up : batch.updates) {
    EXPECT_TRUE(seen.count({up.u, up.v}));
    EXPECT_TRUE(seen.count({up.v, up.u}));
  }
}

// ---- cross-shard consistency ---------------------------------------------

TEST(ShardedIngest, MatchesSingleShardReference) {
  const vertex_id n = 300;
  const auto schedule = make_schedule(n, /*num_batches=*/8,
                                      /*batch_size=*/256, /*seed=*/11);
  for (std::size_t shards : {std::size_t{1}, std::size_t{2},
                             std::size_t{4}}) {
    snapshot_manager<empty_weight> ref(n);
    sharded_snapshot_manager<empty_weight> mgr(
        n, {.num_shards = shards, .block_bits = 3});
    for (const auto& raw : schedule) {
      ref.ingest(std::vector<uw_update>(raw));
      ref.publish();
      mgr.ingest(std::vector<uw_update>(raw));
      mgr.flush();

      auto rsnap = ref.pin();
      auto snap = mgr.pin();
      ASSERT_TRUE(snap);
      // Identical graph at every composite version...
      expect_same_csr(snap.view(), rsnap.view());
      // ...the unmaterialized stitched view routes to the same rows...
      gbbs::serve::composite_view<empty_weight> cv(snap.composite_handle());
      ASSERT_EQ(cv.num_edges(), snap.view().num_edges());
      for (vertex_id v = 0; v < n; ++v) {
        auto nb = rsnap.view().out_neighbors(v);
        ASSERT_EQ(cv.out_degree(v), nb.size()) << "degree of " << v;
        std::size_t j = 0;
        bool ordered = true;
        cv.map_out_neighbors(v, [&](vertex_id, vertex_id ngh, empty_weight) {
          if (j >= nb.size() || nb[j] != ngh) ordered = false;
          ++j;
        });
        ASSERT_TRUE(ordered) << "row of " << v;
      }
      // ...and the barrier-merged components match the reference
      // partition (both checked against a static traversal).
      const auto labels =
          snap.components().materialize(snap.num_vertices());
      EXPECT_TRUE(gbbs::same_partition(
          labels, rsnap.components().materialize(rsnap.num_vertices())));
      EXPECT_TRUE(gbbs::same_partition(labels,
                                       gbbs::connectivity(snap.view())));
    }

    // Point reads through the engine's shard router agree with the
    // reference CSR (after flush, shard-apply freshness == composite).
    auto rsnap = ref.pin();
    query_engine<empty_weight> eng(mgr.store(), mgr.router(), 2);
    for (vertex_id v = 0; v < n; v += 17) {
      auto deg = eng.submit({query_kind::degree, v, 0}).get();
      ASSERT_EQ(deg.status, gbbs::serve::query_status::ok);
      EXPECT_EQ(deg.value, rsnap.view().out_neighbors(v).size());
      auto nbr = eng.submit({query_kind::neighbors, v, 0}).get();
      auto nb = rsnap.view().out_neighbors(v);
      ASSERT_EQ(nbr.list.size(), nb.size());
      for (std::size_t j = 0; j < nb.size(); ++j) {
        EXPECT_EQ(nbr.list[j], nb[j]);
      }
    }
  }
}

TEST(ShardedIngest, EmptySlicesGrowInLockstep) {
  // A batch touching only high vertex ids grows *every* shard's vertex
  // set (empty sub-batches still carry max_vertex), keeping n consistent
  // across the stitched composite.
  sharded_snapshot_manager<empty_weight> mgr(
      8, {.num_shards = 4, .block_bits = 1});
  std::vector<uw_update> raw;
  raw.push_back({100, 101, {}, update_op::insert});
  mgr.ingest(std::move(raw));
  mgr.flush();
  auto snap = mgr.pin();
  EXPECT_EQ(snap.num_vertices(), 102u);
  for (std::size_t s = 0; s < mgr.num_shards(); ++s) {
    auto idx = mgr.shard_overlay(s).read();
    ASSERT_TRUE(idx != nullptr);
    EXPECT_EQ(idx->n, 102u);
  }
}

// ---- straggler shard vs the composite clock ------------------------------

TEST(ShardedIngest, StragglerNeverPublishesEarly) {
  auto& freg = gbbs::robust::registry::instance();
  freg.reset();
  freg.set_seed(3);
  // Exactly one of the two per-batch shard applies (whichever hits the
  // point second) sleeps 200ms — a deterministic straggler.
  freg.configure("ingest.shard.apply.delay",
                 gbbs::robust::failpoint_mode::every_nth, 0, 2, 200000);

  {
    sharded_snapshot_manager<empty_weight> mgr(
        64, {.num_shards = 2, .block_bits = 2});
    EXPECT_EQ(mgr.composite_clock(), 0u);
    std::vector<uw_update> raw;
    for (vertex_id i = 0; i + 1 < 64; ++i) {
      raw.push_back({i, i + 1, {}, update_op::insert});
    }
    mgr.ingest(std::move(raw));

    // Wait for the fast shard's overlay to cover batch 1 while the
    // straggler still holds the clock at 0.
    bool window = false;
    for (int spin = 0; spin < 4000; ++spin) {
      const bool one_applied = mgr.shard_overlay(0).epoch() >= 1 ||
                               mgr.shard_overlay(1).epoch() >= 1;
      if (one_applied) {
        window = mgr.applied_version() == 0;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(window) << "straggler window not observed";

    // Publishing inside the window must not surface batch 1: the clock's
    // minimum is still 0, so the composite re-publishes clock 0.
    mgr.publish();
    EXPECT_EQ(mgr.composite_clock(), 0u);
    {
      auto snap = mgr.pin();
      EXPECT_EQ(snap.view().num_edges(), 0u);
    }
    // Guard against the straggler finishing between the checks above: the
    // window assertion is only meaningful if the clock was still 0 when
    // publish() ran. (The 200ms sleep makes this overwhelmingly likely;
    // if the host stalled that long, re-check rather than fail falsely.)
    if (mgr.applied_version() == 0) {
      EXPECT_EQ(mgr.pin().view().num_edges(), 0u);
    }

    // flush() waits the straggler out and surfaces everything.
    mgr.flush();
    EXPECT_EQ(mgr.composite_clock(), 1u);
    auto snap = mgr.pin();
    EXPECT_EQ(snap.view().num_edges(), 126u);
    EXPECT_TRUE(gbbs::same_partition(
        snap.components().materialize(snap.num_vertices()),
        gbbs::connectivity(snap.view())));
  }
  freg.reset();
}

// ---- ingest vs concurrent readers (TSan target) --------------------------

TEST(ShardedIngest, ConcurrentReadersDuringIngest) {
  const vertex_id n = 256;
  const auto schedule = make_schedule(n, /*num_batches=*/6,
                                      /*batch_size=*/256, /*seed=*/23);
  snapshot_manager<empty_weight> ref(n);
  sharded_snapshot_manager<empty_weight> mgr(
      n, {.num_shards = 2, .block_bits = 3});
  query_engine<empty_weight> eng(mgr.store(), mgr.router(), 2);

  std::atomic<bool> done{false};
  // Pin-and-traverse readers: composite versions must always be
  // internally consistent (stitched m matches the materialized CSR, the
  // component partition matches a static traversal of the same version).
  std::thread pinner([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto snap = mgr.pin();
      if (!snap) continue;
      const auto& view = snap.view();
      EXPECT_EQ(view.num_edges() % 2, 0u);
      EXPECT_TRUE(gbbs::same_partition(
          snap.components().materialize(snap.num_vertices()),
          gbbs::connectivity(view)));
    }
  });
  // Router readers: point reads against the owner shard's seqlock
  // overlay while that shard's worker applies and refreshes.
  std::thread router_reader([&] {
    parlib::random rng(41);
    std::size_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto v = static_cast<vertex_id>(rng.ith_rand(i++) % n);
      auto deg = eng.submit({query_kind::degree, v, 0}).get();
      EXPECT_EQ(deg.status, gbbs::serve::query_status::ok);
    }
  });

  for (const auto& raw : schedule) {
    ref.ingest(std::vector<uw_update>(raw));
    ref.publish();
    mgr.ingest(std::vector<uw_update>(raw));
    mgr.publish();
  }
  mgr.flush();
  done.store(true, std::memory_order_release);
  pinner.join();
  router_reader.join();

  expect_same_csr(mgr.pin().view(), ref.pin().view());
}

}  // namespace
