// wBFS (bucketed SSSP) and Bellman-Ford vs Dijkstra / sequential oracles,
// including negative weights and negative cycles for Bellman-Ford.
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/bellman_ford.h"
#include "algorithms/wbfs.h"
#include "graph/compression/compressed_graph.h"
#include "seq/reference.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

class SsspSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, SsspSuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(SsspSuite, WbfsMatchesDijkstra) {
  auto g = gbbs::testing::make_symmetric_weighted(GetParam());
  if (g.num_vertices() == 0) return;
  const vertex_id src = g.num_vertices() / 3;
  auto got = gbbs::wbfs(g, src);
  auto expected = gbbs::seq::dijkstra(g, src);
  for (std::size_t v = 0; v < expected.size(); ++v) {
    if (expected[v] == gbbs::seq::kInfDist64) {
      ASSERT_EQ(got.dist[v], std::numeric_limits<std::uint32_t>::max()) << v;
    } else {
      ASSERT_EQ(static_cast<std::int64_t>(got.dist[v]), expected[v])
          << GetParam() << " v=" << v;
    }
  }
}

TEST_P(SsspSuite, BellmanFordMatchesDijkstraOnPositiveWeights) {
  auto g = gbbs::testing::make_symmetric_weighted(GetParam());
  if (g.num_vertices() == 0) return;
  const vertex_id src = 0;
  auto got = gbbs::bellman_ford(g, src);
  auto expected = gbbs::seq::dijkstra(g, src);
  for (std::size_t v = 0; v < expected.size(); ++v) {
    if (expected[v] == gbbs::seq::kInfDist64) {
      ASSERT_EQ(got[v], gbbs::kInfDist64) << v;
    } else {
      ASSERT_EQ(got[v], expected[v]) << GetParam() << " v=" << v;
    }
  }
}

TEST(Sssp, WbfsAndBellmanFordAgree) {
  auto g = gbbs::testing::make_symmetric_weighted("rmat", 11);
  auto a = gbbs::wbfs(g, 5);
  auto b = gbbs::bellman_ford(g, 5);
  for (std::size_t v = 0; v < a.dist.size(); ++v) {
    if (a.dist[v] == std::numeric_limits<std::uint32_t>::max()) {
      ASSERT_EQ(b[v], gbbs::kInfDist64);
    } else {
      ASSERT_EQ(static_cast<std::int64_t>(a.dist[v]), b[v]) << v;
    }
  }
}

TEST(Sssp, WbfsOnCompressedGraph) {
  auto g = gbbs::testing::make_symmetric_weighted("torus");
  auto cg = gbbs::compressed_graph<std::uint32_t>::compress(g);
  auto a = gbbs::wbfs(g, 7);
  auto b = gbbs::wbfs(cg, 7);
  EXPECT_EQ(a.dist, b.dist);
}

TEST(Sssp, WbfsRoundsBoundedByTotalDistanceRange) {
  // On a path with unit-ish weights, the number of bucket pops equals the
  // number of distinct finite distances.
  std::vector<gbbs::edge<std::uint32_t>> edges;
  for (vertex_id i = 0; i + 1 < 50; ++i) edges.push_back({i, i + 1, 1});
  auto g = gbbs::build_symmetric_graph<std::uint32_t>(50, edges);
  auto res = gbbs::wbfs(g, 0);
  EXPECT_EQ(res.num_rounds, 50u);
  for (vertex_id v = 0; v < 50; ++v) ASSERT_EQ(res.dist[v], v);
}

TEST(BellmanFord, NegativeWeightsNoCycle) {
  // Directed: 0->1 (4), 0->2 (1), 2->1 (-3), 1->3 (2).
  std::vector<gbbs::edge<std::int32_t>> edges = {
      {0, 1, 4}, {0, 2, 1}, {2, 1, -3}, {1, 3, 2}};
  auto g = gbbs::build_asymmetric_graph<std::int32_t>(4, edges);
  auto got = gbbs::bellman_ford(g, 0);
  auto expected = gbbs::seq::bellman_ford_edges<std::int32_t>(4, edges, 0);
  for (int v = 0; v < 4; ++v) {
    ASSERT_EQ(got[v], expected[v]) << v;
  }
  EXPECT_EQ(got[1], -2);
  EXPECT_EQ(got[3], 0);
}

TEST(BellmanFord, NegativeCycleReportsMinusInfinity) {
  // 0 -> 1 -> 2 -> 1 with cycle weight -1; 2 -> 3. Vertices 1,2,3 are all
  // reachable from the cycle; 0 is not.
  std::vector<gbbs::edge<std::int32_t>> edges = {
      {0, 1, 1}, {1, 2, 1}, {2, 1, -2}, {2, 3, 5}};
  auto g = gbbs::build_asymmetric_graph<std::int32_t>(4, edges);
  auto got = gbbs::bellman_ford(g, 0);
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(got[1], gbbs::kNegInfDist64);
  EXPECT_EQ(got[2], gbbs::kNegInfDist64);
  EXPECT_EQ(got[3], gbbs::kNegInfDist64);
}

TEST(BellmanFord, UnreachableNegativeCycleDoesNotPoison) {
  // Negative cycle 2<->3 is not reachable from 0.
  std::vector<gbbs::edge<std::int32_t>> edges = {
      {0, 1, 1}, {2, 3, -5}, {3, 2, 1}};
  auto g = gbbs::build_asymmetric_graph<std::int32_t>(4, edges);
  auto got = gbbs::bellman_ford(g, 0);
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(got[1], 1);
  EXPECT_EQ(got[2], gbbs::kInfDist64);
  EXPECT_EQ(got[3], gbbs::kInfDist64);
}

TEST(BellmanFord, DirectedGraphMatchesOracle) {
  auto g0 = gbbs::testing::make_directed("rmat_dir");
  // Re-weight deterministically with some negative edges (no cycles made
  // negative: weights >= 1 except a few forward DAG-ified edges).
  auto base = g0.edges();
  std::vector<gbbs::edge<std::int32_t>> edges(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    const auto h = parlib::hash64(i);
    edges[i] = {base[i].u, base[i].v, static_cast<std::int32_t>(h % 8 + 1)};
  }
  auto g = gbbs::build_asymmetric_graph<std::int32_t>(g0.num_vertices(),
                                                      edges);
  auto got = gbbs::bellman_ford(g, 0);
  auto flat = g.edges();
  auto expected = gbbs::seq::bellman_ford_edges<std::int32_t>(
      g.num_vertices(), flat, 0);
  for (std::size_t v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(got[v], expected[v]) << v;
  }
}

}  // namespace
