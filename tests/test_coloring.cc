// Graph coloring: propriety, Delta+1 bound, LLF vs LF heuristics, shapes
// with known chromatic structure.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/coloring.h"
#include "graph/compression/compressed_graph.h"
#include "seq/reference.h"
#include "test_graphs.h"

namespace {

using gbbs::vertex_id;

template <typename Graph>
vertex_id max_degree(const Graph& g) {
  vertex_id d = 0;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    d = std::max(d, g.out_degree(v));
  }
  return d;
}

class ColoringSuite : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(
    Graphs, ColoringSuite,
    ::testing::ValuesIn(gbbs::testing::symmetric_suite_names()));

TEST_P(ColoringSuite, LlfIsProperAndWithinDeltaPlusOne) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto colors = gbbs::color_graph(g, gbbs::coloring_heuristic::llf);
  EXPECT_TRUE(gbbs::seq::is_valid_coloring(g, colors, max_degree(g) + 1))
      << GetParam();
}

TEST_P(ColoringSuite, LfIsProperAndWithinDeltaPlusOne) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto colors = gbbs::color_graph(g, gbbs::coloring_heuristic::lf);
  EXPECT_TRUE(gbbs::seq::is_valid_coloring(g, colors, max_degree(g) + 1))
      << GetParam();
}

TEST(Coloring, PathUsesTwoOrThreeColors) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      100, gbbs::path_edges(100));
  auto colors = gbbs::color_graph(g);
  EXPECT_LE(gbbs::num_colors(colors), 3u);
}

TEST(Coloring, CompleteGraphNeedsAllColors) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      25, gbbs::complete_edges(25));
  auto colors = gbbs::color_graph(g);
  EXPECT_EQ(gbbs::num_colors(colors), 25u);
}

TEST(Coloring, StarUsesTwoColors) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      128, gbbs::star_edges(128));
  auto colors = gbbs::color_graph(g);
  EXPECT_EQ(gbbs::num_colors(colors), 2u);
}

TEST(Coloring, EmptyGraphOneColor) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(10, {});
  auto colors = gbbs::color_graph(g);
  EXPECT_EQ(gbbs::num_colors(colors), 1u);
}

TEST(Coloring, BipartiteGridGetsFewColors) {
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      400, gbbs::grid2d_edges(20, 20));
  auto colors = gbbs::color_graph(g);
  // Greedy on a bipartite graph can exceed 2 but stays small.
  EXPECT_LE(gbbs::num_colors(colors), 5u);
}

TEST(Coloring, SeedsProduceValidColorings) {
  auto g = gbbs::testing::make_symmetric("rmat");
  const auto bound = max_degree(g) + 1;
  for (std::uint64_t seed : {3ull, 31ull, 314ull}) {
    auto colors = gbbs::color_graph(g, gbbs::coloring_heuristic::llf,
                                    parlib::random(seed));
    ASSERT_TRUE(gbbs::seq::is_valid_coloring(g, colors, bound)) << seed;
  }
}

TEST_P(ColoringSuite, AsyncIsProperAndWithinDeltaPlusOne) {
  auto g = gbbs::testing::make_symmetric(GetParam());
  auto colors = gbbs::color_graph_async(g, gbbs::coloring_heuristic::llf);
  EXPECT_TRUE(gbbs::seq::is_valid_coloring(g, colors, max_degree(g) + 1))
      << GetParam();
}

TEST(Coloring, AsyncMatchesSyncExactly) {
  // Both execute greedy coloring in the same priority order, so the result
  // is the identical (deterministic) coloring, barriers or not.
  auto g = gbbs::testing::make_symmetric("rmat");
  auto sync_colors = gbbs::color_graph(g, gbbs::coloring_heuristic::llf,
                                       parlib::random(5));
  auto async_colors = gbbs::color_graph_async(
      g, gbbs::coloring_heuristic::llf, parlib::random(5));
  EXPECT_EQ(sync_colors, async_colors);
}

TEST(Coloring, AsyncOnLongPath) {
  // A path is the worst case for activation chains; the balanced fork-join
  // activation keeps it within stack limits.
  auto g = gbbs::build_symmetric_graph<gbbs::empty_weight>(
      20000, gbbs::path_edges(20000));
  auto colors = gbbs::color_graph_async(g);
  EXPECT_TRUE(gbbs::seq::is_valid_coloring(g, colors, 3));
}

TEST(Coloring, CompressedMatchesUncompressed) {
  auto g = gbbs::testing::make_symmetric("torus");
  auto cg = gbbs::compressed_graph<gbbs::empty_weight>::compress(g);
  auto a = gbbs::color_graph(g, gbbs::coloring_heuristic::llf,
                             parlib::random(9));
  auto b = gbbs::color_graph(cg, gbbs::coloring_heuristic::llf,
                             parlib::random(9));
  EXPECT_TRUE(gbbs::seq::is_valid_coloring(g, b, max_degree(g) + 1));
  EXPECT_EQ(a, b);
}

}  // namespace
